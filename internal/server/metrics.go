package server

import (
	"time"

	"selfgo"
	"selfgo/internal/metrics"
)

// serverMetrics holds the write-side metric handles the request path
// touches. Everything derived from state the server already keeps
// (pool occupancy, cache counters, tier counts) is exported through
// callback families instead, so there is exactly one source of truth
// per number.
type serverMetrics struct {
	requests *metrics.CounterVec // endpoint, code
	latency  *metrics.HistogramVec
	shed     *metrics.Counter

	programsLoaded *metrics.Counter
	exprInterned   *metrics.Counter
	exprHits       *metrics.Counter
	exprEvicted    *metrics.Counter

	// Guest-side totals accumulated from per-request RunStats.
	guestInstrs     *metrics.Counter
	guestCycles     *metrics.Counter
	guestSends      *metrics.Counter
	guestAllocs     *metrics.Counter
	guestAllocBytes *metrics.Counter
	faults          *metrics.CounterVec // kind

	// Basic-block versioning activity (zero under the split strategy).
	bbvVersions *metrics.Counter
	bbvCapHits  *metrics.Counter
}

func (s *Server) registerMetrics() {
	r := s.reg

	s.m.requests = r.CounterVec("selfserved_requests_total",
		"Requests answered, by endpoint and HTTP status code.", "endpoint", "code")
	s.m.latency = r.HistogramVec("selfserved_request_seconds",
		"Wall-clock request latency by endpoint.", metrics.DefBuckets, "endpoint")
	s.m.shed = r.Counter("selfserved_shed_total",
		"Requests rejected with 429 because the admission queue was full.")

	s.m.programsLoaded = r.Counter("selfserved_programs_loaded_total",
		"Distinct program texts loaded into the shared world.")
	s.m.exprInterned = r.Counter("selfserved_exprs_interned_total",
		"Eval expressions parsed and interned (first sight of a text).")
	s.m.exprHits = r.Counter("selfserved_expr_hits_total",
		"Eval requests served from an already-interned expression.")
	s.m.exprEvicted = r.Counter("selfserved_exprs_evicted_total",
		"Interned expressions rotated out of the LRU (code evicted too).")

	s.m.guestInstrs = r.Counter("selfgo_guest_instrs_total",
		"Guest instructions executed across all requests.")
	s.m.guestCycles = r.Counter("selfgo_guest_cycles_total",
		"Modelled guest cycles across all requests.")
	s.m.guestSends = r.Counter("selfgo_guest_sends_total",
		"Guest message sends across all requests.")
	s.m.guestAllocs = r.Counter("selfgo_guest_allocs_total",
		"Guest allocations across all requests.")
	s.m.guestAllocBytes = r.Counter("selfgo_guest_alloc_bytes_total",
		"Modelled bytes of guest vector/clone storage across all requests.")
	s.m.faults = r.CounterVec("selfserved_guest_faults_total",
		"Guest runs that ended in a fault, by RuntimeError kind.", "kind")

	s.m.bbvVersions = r.Counter("selfgo_bbv_versions_total",
		"Basic-block versions materialized across all requests (0 under the split strategy).")
	s.m.bbvCapHits = r.Counter("selfgo_bbv_cap_hits_total",
		"Version-cap hits: block entries that fell back to the generic version.")

	// Server gauges: read straight off the live state.
	r.GaugeFunc("selfserved_in_flight",
		"Requests currently executing guest code.",
		func() float64 { return float64(s.inFlight.Load()) })
	r.GaugeFunc("selfserved_queued",
		"Requests waiting for a worker VM.",
		func() float64 { return float64(s.queued.Load()) })
	// Pool occupancy, read off the channel itself. The two gauges sum
	// to the configured capacity; an earlier version exported only the
	// static cfg.Pool, which never moved and hid worker starvation.
	r.GaugeFunc("selfserved_pool_free",
		"Worker VMs idle in the pool, ready to serve.",
		func() float64 { return float64(len(s.pool)) })
	r.GaugeFunc("selfserved_pool_in_use",
		"Worker VMs checked out and serving requests.",
		func() float64 { return float64(s.cfg.Pool - len(s.pool)) })
	r.GaugeFunc("selfserved_pool_in_use_peak",
		"High-water mark of simultaneously checked-out workers since start.",
		func() float64 { return float64(s.poolPeak.Load()) })
	r.GaugeFunc("selfserved_draining",
		"1 while the server is draining for shutdown.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("selfserved_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.GaugeFunc("selfserved_loaded_programs",
		"Program texts currently in the loaded table.",
		func() float64 { return float64(s.LoadedPrograms()) })
	r.GaugeFunc("selfserved_interned_exprs",
		"Expressions currently interned.",
		func() float64 { return float64(s.InternedExprs()) })

	// Code cache: the compile-once story in numbers. misses_total is
	// the count of actual compiler runs; if it stops growing while
	// hits_total climbs, every request is running cached code.
	r.CounterFunc("selfgo_codecache_hits_total",
		"Shared-cache lookups that found compiled code.",
		func() float64 { return float64(s.cacheStats().Hits) })
	r.CounterFunc("selfgo_codecache_misses_total",
		"Shared-cache lookups that ran the compiler (one compile each).",
		func() float64 { return float64(s.cacheStats().Misses) })
	r.CounterFunc("selfgo_codecache_waits_total",
		"Shared-cache lookups that blocked on another worker's compile.",
		func() float64 { return float64(s.cacheStats().Waits) })
	r.CounterFunc("selfgo_codecache_evicted_total",
		"Shared-cache entries removed by invalidation.",
		func() float64 { return float64(s.cacheStats().Evicted) })
	r.GaugeFunc("selfgo_codecache_entries",
		"Shared-cache entries resident.",
		func() float64 { return float64(s.cacheStats().Entries) })

	// World-image warm start. restore_seconds and prepromoted_total
	// are 0 on a cold boot; time_to_ready covers New-to-ready
	// (including background pre-promotion) and is 0 until ready.
	r.GaugeFunc("selfgo_image_restore_seconds",
		"Image decode + source replay + state restore time (0 = cold boot).",
		func() float64 { return s.restoreDur.Seconds() })
	r.CounterFunc("selfgo_prepromoted_total",
		"Manifest entries re-compiled at their recorded tier during warm boot.",
		func() float64 { return float64(s.prepromoted.Load()) })
	r.CounterFunc("selfgo_prepromote_failed_total",
		"Manifest entries whose boot-time recompile failed (fell back to on-demand).",
		func() float64 { return float64(s.prepromoteFailed.Load()) })
	r.GaugeFunc("selfserved_ready",
		"1 once boot (including manifest pre-promotion) has completed.",
		func() float64 {
			if s.ready.Load() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("selfserved_time_to_ready_seconds",
		"Seconds from process start to readiness (0 while warming).",
		func() float64 { return float64(s.readySeconds.Load()) / 1e6 })

	// Adaptive tier promotion.
	r.CounterFunc("selfgo_promotions_installed_total",
		"Background tier promotions installed into the shared cache.",
		func() float64 { return float64(s.cacheStats().Promotions) })
	r.CounterFunc("selfgo_promotions_failed_total",
		"Background tier promotions whose recompile failed.",
		func() float64 { return float64(s.cacheStats().PromoteFails) })
	r.CounterFunc("selfgo_promotions_discarded_total",
		"Background tier promotions discarded (entry invalidated meanwhile).",
		func() float64 { return float64(s.cacheStats().PromoteDiscards) })
	r.GaugeFunc("selfgo_promotion_mean_latency_seconds",
		"Mean hot-trigger-to-install latency of installed promotions.",
		func() float64 { return s.root.PromotionStats().MeanLatency.Seconds() })

	// Compile log by tier: how many compiles each pipeline tier ran.
	r.RegisterFunc("selfgo_compiles_total",
		"Compiler runs recorded, by pipeline tier.",
		metrics.KindCounter, []string{"tier"}, func() []metrics.Sample {
			counts := s.root.TierCounts()
			out := make([]metrics.Sample, 0, len(counts))
			for _, tier := range []string{"baseline", "optimizing", "native", "degraded"} {
				if n, ok := counts[tier]; ok {
					out = append(out, metrics.Sample{Labels: []string{tier}, Value: float64(n)})
				}
			}
			return out
		})
}

// cacheStats snapshots the shared cache (always present: the server is
// built on NewTieredSystem).
func (s *Server) cacheStats() selfgo.CacheStats {
	cs, _ := s.root.CacheStats()
	return cs
}

// observe records one finished request.
func (s *Server) observe(endpoint, code string, dur time.Duration) {
	s.m.requests.With(endpoint, code).Inc()
	s.m.latency.With(endpoint).Observe(dur.Seconds())
	s.served.Add(1)
	if s.draining.Load() {
		s.drained.Add(1)
	}
}
