// Package selfgo is a from-scratch reproduction of the compiler
// described in Chambers & Ungar, "Iterative Type Analysis and Extended
// Message Splitting: Optimizing Dynamically-Typed Object-Oriented
// Programs" (PLDI 1990): a SELF-like prototype-based language, an
// optimizing compiler built around type analysis, message splitting and
// multi-version loops, and a costed virtual machine that reproduces the
// paper's performance comparisons.
//
// Typical use:
//
//	sys, _ := selfgo.NewSystem(selfgo.NewSELF)
//	_ = sys.LoadSource(`triangleNumber: n = ( |sum <- 0| 1 upTo: n Do: [:i| sum: sum + i]. sum ).`)
//	res, _ := sys.Call("triangleNumber:", selfgo.IntValue(100))
//	fmt.Println(res.Value, res.Run.Cycles)
//
// Compilation is tiered (see TierMode): the default mode compiles every
// method eagerly at the optimizing tier, exactly as the paper's system
// does; adaptive mode compiles at the cheap baseline tier first and
// promotes hot methods in the background — first to the optimizing
// tier, seeded with receiver types harvested from the inline caches,
// then to the native tier, which runs the same optimizing code on a
// closure-threaded backend for host speed.
package selfgo

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"selfgo/internal/ast"
	"selfgo/internal/codecache"
	"selfgo/internal/core"
	"selfgo/internal/ir"
	"selfgo/internal/obj"
	"selfgo/internal/parser"
	"selfgo/internal/prelude"
	"selfgo/internal/types"
	"selfgo/internal/vm"
)

// Re-exported types: the full object model, compiler configuration and
// statistics are usable through these aliases without importing
// internal packages.
type (
	// Config selects a compiler generation (see the preset variables).
	Config = core.Config
	// CompileStats describes one method compilation.
	CompileStats = core.Stats
	// PassStat is one pipeline pass's share of a compilation
	// (CompileStats.Passes).
	PassStat = core.PassStat
	// Tier is a compilation tier (TierDegraded, TierBaseline,
	// TierOptimizing).
	Tier = core.Tier
	// RunStats is the dynamic cost accounting of an execution.
	RunStats = vm.RunStats
	// CompileRecord sums compilation work triggered by a run.
	CompileRecord = vm.CompileRecord
	// Value is a runtime value of the object language.
	Value = obj.Value
	// World is the object universe (lobby, maps, singletons).
	World = obj.World
	// Graph is a compiled method's control flow graph.
	Graph = ir.Graph
	// Code is assembled register bytecode.
	Code = vm.Code
	// CacheStats is a snapshot of the shared code cache's counters.
	CacheStats = codecache.Stats
	// Budget bounds one execution (instructions, depth, allocations);
	// zero fields are unlimited. See SetBudget and CallCtx.
	Budget = vm.Budget
	// RuntimeError is a guest-level error with a Kind classification
	// and a captured Self-level backtrace.
	RuntimeError = vm.RuntimeError
	// ErrKind classifies a RuntimeError.
	ErrKind = vm.ErrKind
	// Strategy selects how compiled code specializes on types:
	// iterative analysis + splitting (the paper's system), lazy
	// basic-block versioning with typed shapes, or both.
	Strategy = core.Strategy
)

// Specialization strategies, re-exported from core.
const (
	StrategySplit = core.StrategySplit
	StrategyBBV   = core.StrategyBBV
	StrategyBoth  = core.StrategyBoth
)

// StrategyByName resolves the -strategy flag spellings ("split", "bbv",
// "both"; empty means split).
func StrategyByName(name string) (Strategy, error) {
	return core.ParseStrategy(name)
}

// Compilation tiers, re-exported from core.
const (
	TierDegraded   = core.TierDegraded
	TierBaseline   = core.TierBaseline
	TierOptimizing = core.TierOptimizing
	TierNative     = core.TierNative
)

// RuntimeError kinds, re-exported for hosts that route faults.
const (
	KindError             = vm.KindError
	KindDoesNotUnderstand = vm.KindDoesNotUnderstand
	KindStackOverflow     = vm.KindStackOverflow
	KindOutOfFuel         = vm.KindOutOfFuel
	KindCancelled         = vm.KindCancelled
	KindPrimitiveFailed   = vm.KindPrimitiveFailed
	KindInternal          = vm.KindInternal
)

// ErrorKind extracts the ErrKind classification from err, unwrapping
// as needed; ok is false when err carries no RuntimeError.
func ErrorKind(err error) (kind ErrKind, ok bool) {
	var re *RuntimeError
	if errors.As(err, &re) {
		return re.Kind, true
	}
	return KindError, false
}

// TierMode selects how a System schedules compilation tiers.
type TierMode int

const (
	// ModeOpt compiles every method eagerly at the optimizing tier —
	// the paper's system, and the default. Bit-identical in all
	// modelled quantities to the pre-tiering compile path.
	ModeOpt TierMode = iota
	// ModeBaseline compiles every method at the cheap baseline tier
	// and never promotes (the floor adaptive mode starts from).
	ModeBaseline
	// ModeAdaptive compiles at the baseline tier first; methods whose
	// invocation+backedge count reaches the promotion threshold are
	// recompiled at the optimizing tier in the background, seeded with
	// receiver-map feedback harvested from the inline caches, and
	// atomically swapped into the shared code cache. Optimizing code
	// that stays hot is promoted once more, to the native tier — the
	// same optimizing stream lowered onto the closure-threaded backend
	// (see TierNative).
	ModeAdaptive
	// ModeNative compiles every method eagerly at the native tier: the
	// optimizing configuration lowered onto the closure-threaded
	// backend. Bit-identical to ModeOpt in every modelled quantity (the
	// native differential oracle pins this); only host speed differs.
	ModeNative
)

func (m TierMode) String() string {
	switch m {
	case ModeOpt:
		return "opt"
	case ModeBaseline:
		return "baseline"
	case ModeAdaptive:
		return "adaptive"
	case ModeNative:
		return "native"
	}
	return fmt.Sprintf("TierMode(%d)", int(m))
}

// TierModeByName resolves the -tier flag spellings.
func TierModeByName(name string) (TierMode, error) {
	switch name {
	case "opt", "":
		return ModeOpt, nil
	case "baseline":
		return ModeBaseline, nil
	case "adaptive":
		return ModeAdaptive, nil
	case "native":
		return ModeNative, nil
	}
	return ModeOpt, fmt.Errorf("unknown tier mode %q (want opt, baseline, adaptive or native)", name)
}

// DefaultPromoteThreshold is the invocation+backedge count at which
// adaptive mode promotes a method when no threshold is given.
const DefaultPromoteThreshold = 1000

// Compiler generation presets, matching the systems measured in §6 of
// the paper.
var (
	NewSELF          = core.NewSELF
	NewSELFMultiLoop = core.NewSELFMultiLoop
	NewSELFExtended  = core.NewSELFExtended
	OldSELF89        = core.OldSELF89
	OldSELF90        = core.OldSELF90
	ST80             = core.ST80
	OptimizedC       = core.StaticIdealC
)

// Configs lists every preset in presentation order.
func Configs() []Config {
	return []Config{ST80, OldSELF89, OldSELF90, NewSELF, NewSELFMultiLoop, OptimizedC}
}

// IntValue, StrValue and NilValue build argument values.
func IntValue(i int64) Value  { return obj.Int(i) }
func StrValue(s string) Value { return obj.Str(s) }
func NilValue() Value         { return obj.Nil() }

// System is a loaded world plus a compiler configuration and a VM with
// its dynamic-compilation cache.
//
// A System (and its VM) is single-goroutine. Concurrency comes from
// NewSharedSystem/NewTieredSystem + Fork: each Fork shares the world,
// the compile pipelines and one sharded single-flight code cache, but
// runs its own VM, so worker systems may call methods concurrently once
// loading is done. Adaptive promotion compiles run on background
// goroutines against the same shared cache.
type System struct {
	Cfg Config
	// Mode is the tier schedule this system runs under (ModeOpt unless
	// built with NewTieredSystem).
	Mode  TierMode
	world *obj.World

	// One pipeline per tier, all derived from Cfg through the tier
	// table. pipeOpt is the eager/first-promotion target, pipeNative
	// the top tier (ModeNative's eager tier and the adaptive second
	// promotion rung), pipeBase the cheap first tier of
	// baseline/adaptive modes, pipeDeg the crash-recovery fallback when
	// a compilation fails or panics.
	pipeOpt    *core.Pipeline
	pipeNative *core.Pipeline
	pipeBase   *core.Pipeline
	pipeDeg    *core.Pipeline

	machine *vm.VM

	// shared is the process-wide code cache, nil for a private system.
	shared *codecache.Cache[*vm.Code]

	// promoteThreshold is the hotness count that triggers promotion in
	// ModeAdaptive.
	promoteThreshold int64

	// prom aggregates promotion latency across this system and all its
	// forks.
	prom *promAgg

	// log accumulates per-method compiler statistics in compilation
	// order; forked workers append to their parent's log, so it is
	// mutex-protected.
	log *compileLog

	// sources records every text successfully loaded into the world,
	// in order — the replayable recipe world images are built on.
	// Shared across forks like the log.
	sources *sourceLog
}

// sourceLog is the shared, locked load-text record. dirty is set when
// a load failed partway: the world then no longer matches any
// replayable source sequence and SaveImage refuses to run.
type sourceLog struct {
	mu    sync.Mutex
	texts []string
	dirty bool
}

func (l *sourceLog) add(src string) {
	l.mu.Lock()
	l.texts = append(l.texts, src)
	l.mu.Unlock()
}

func (l *sourceLog) markDirty() {
	l.mu.Lock()
	l.dirty = true
	l.mu.Unlock()
}

func (l *sourceLog) snapshot() ([]string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.texts...), l.dirty
}

// compileLog is the shared, locked compile log.
type compileLog struct {
	mu      sync.Mutex
	entries []MethodCompile
}

func (l *compileLog) add(e MethodCompile) {
	l.mu.Lock()
	l.entries = append(l.entries, e)
	l.mu.Unlock()
}

func (l *compileLog) snapshot() []MethodCompile {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]MethodCompile(nil), l.entries...)
}

func (l *compileLog) totalDuration() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	var d time.Duration
	for _, e := range l.entries {
		d += e.Stats.Duration
	}
	return d
}

// promAgg aggregates promotion latencies (hot-trigger to installed
// swap) across forks.
type promAgg struct {
	mu        sync.Mutex
	installed int64
	total     time.Duration
}

func (a *promAgg) record(d time.Duration) {
	a.mu.Lock()
	a.installed++
	a.total += d
	a.mu.Unlock()
}

// MethodCompile is one entry of the compile log.
type MethodCompile struct {
	Name string
	// Tier labels the tier this compilation ran at ("baseline",
	// "optimizing", "native", "degraded").
	Tier  string
	Stats core.Stats
	Bytes int
}

// PromotionStats summarizes adaptive-tier promotion activity.
type PromotionStats struct {
	Installed int64 // promoted code swapped into the shared cache
	Fails     int64 // promotion compiles that failed (tier kept)
	Discards  int64 // promoted code discarded (entry invalidated meanwhile)
	// MeanLatency is the average hot-trigger-to-install time of the
	// Installed promotions.
	MeanLatency time.Duration
}

// Result is the outcome of running a method.
type Result struct {
	Value   Value
	Run     RunStats
	Compile CompileRecord
	// CompileTime is the total time the compiler spent for this
	// system so far (the paper's compile-time metric is the sum over
	// all methods a benchmark forces to compile).
	CompileTime time.Duration
}

// NewSystem creates a world with the standard prelude loaded, ready to
// accept program source. Its code cache is private to the one VM, as in
// the original single-process SELF system.
func NewSystem(cfg Config) (*System, error) {
	return newSystem(cfg, nil, ModeOpt, 0, true)
}

// NewSharedSystem creates a system whose VM compiles through a shared
// sharded single-flight code cache. After loading sources, Fork returns
// additional worker systems running against the same world and cache;
// each (method, receiver map) customization is then compiled exactly
// once no matter how many workers request it concurrently.
func NewSharedSystem(cfg Config) (*System, error) {
	return newSystem(cfg, codecache.New[*vm.Code](), ModeOpt, 0, true)
}

// NewTieredSystem creates a shared-cache system running the given tier
// schedule. promoteThreshold applies to ModeAdaptive (values <= 0 use
// DefaultPromoteThreshold); the other modes ignore it. ModeOpt behaves
// exactly like NewSharedSystem.
func NewTieredSystem(cfg Config, mode TierMode, promoteThreshold int64) (*System, error) {
	if promoteThreshold <= 0 {
		promoteThreshold = DefaultPromoteThreshold
	}
	return newSystem(cfg, codecache.New[*vm.Code](), mode, promoteThreshold, true)
}

// newSystem builds a system. loadPrelude is false only when booting
// from a world image, whose recorded source list starts with the
// prelude text the saving process loaded — replaying that (possibly
// older) text is what makes the image self-contained.
func newSystem(cfg Config, shared *codecache.Cache[*vm.Code], mode TierMode, promoteThreshold int64, loadPrelude bool) (*System, error) {
	if mode == ModeAdaptive && shared == nil {
		return nil, fmt.Errorf("adaptive mode requires a shared code cache")
	}
	w := obj.NewWorld()
	if cfg.Strategy != core.StrategySplit {
		// Typed shapes must observe every field store from the first
		// prelude assignment on, so tracking turns on before any code
		// runs. Split-strategy systems leave it off: zero overhead and
		// bit-identical behavior to the pre-BBV system.
		w.ShapeTracking = true
	}
	s := &System{
		Cfg: cfg, Mode: mode, world: w, shared: shared,
		promoteThreshold: promoteThreshold,
		prom:             &promAgg{}, log: &compileLog{},
		sources: &sourceLog{},
	}
	s.pipeOpt = core.NewPipeline(w, cfg, core.TierOptimizing)
	s.pipeNative = core.NewPipeline(w, cfg, core.TierNative)
	s.pipeBase = core.NewPipeline(w, cfg, core.TierBaseline)
	s.pipeDeg = core.NewPipeline(w, cfg, core.TierDegraded)
	s.machine = s.newVM()
	if shared != nil {
		// Invalidate customizations when later loads reshape a map the
		// compiler already specialized against.
		w.OnMapChange = func(m *obj.Map) { shared.InvalidateMap(m) }
	}
	if loadPrelude {
		if err := s.LoadSource(prelude.Source); err != nil {
			return nil, fmt.Errorf("loading prelude: %w", err)
		}
	}
	return s, nil
}

// compileFault, when non-nil, runs before every method compilation and
// may return an error or panic to simulate a compiler fault (degraded
// reports which tier is asking). Test hook for the degraded-fallback
// path; never set in production.
var compileFault func(name string, degraded bool) error

// safeCompile runs one compiler invocation with a panic backstop: a
// panicking pass surfaces as a KindInternal error (with the Go stack
// attached) instead of unwinding into the caller — or, under the
// shared cache, into the single-flight Get.
func safeCompile(f func() (*vm.Code, error)) (c *vm.Code, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &vm.RuntimeError{Kind: vm.KindInternal,
				Msg: fmt.Sprintf("compiler panic: %v", r), GoStack: debug.Stack()}
		}
	}()
	return f()
}

// compileMethodAt runs one tier's pipeline on meth, recording the
// compilation in the shared log. It may run on any goroutine (inside
// the cache's single flight or a promotion flight): it touches only the
// stateless pipeline, the locked log, and its arguments.
func (s *System) compileMethodAt(p *core.Pipeline, meth *obj.Method, rmap *obj.Map, fb *types.Feedback) (*vm.Code, error) {
	return safeCompile(func() (*vm.Code, error) {
		if compileFault != nil {
			if err := compileFault(meth.Sel, p == s.pipeDeg); err != nil {
				return nil, err
			}
		}
		c, st, err := p.CompileMethod(meth, rmap, fb)
		if err != nil {
			return nil, fmt.Errorf("compiling %s: %w", meth, err)
		}
		s.log.add(MethodCompile{Name: c.Name, Tier: p.Tier.String(), Stats: *st, Bytes: c.Bytes})
		return c, nil
	})
}

// compileBlockAt is compileMethodAt for out-of-line blocks.
func (s *System) compileBlockAt(p *core.Pipeline, b *ast.Block, upNames []string) (*vm.Code, error) {
	return safeCompile(func() (*vm.Code, error) {
		c, st, err := p.CompileBlock(b, upNames, nil)
		if err != nil {
			return nil, fmt.Errorf("compiling block at %s: %w", b.P, err)
		}
		s.log.add(MethodCompile{Name: c.Name, Tier: p.Tier.String(), Stats: *st, Bytes: c.Bytes})
		return c, nil
	})
}

// firstTier is the pipeline a fresh compilation starts at under the
// system's mode.
func (s *System) firstTier() *core.Pipeline {
	switch s.Mode {
	case ModeOpt:
		return s.pipeOpt
	case ModeNative:
		return s.pipeNative
	}
	return s.pipeBase
}

// newVM builds a VM wired to this system's world, tier pipelines,
// shared cache and compile log.
//
// Compilation is tiered: fresh code compiles at the mode's first tier
// (optimizing for ModeOpt, baseline otherwise); when that compilation
// fails or panics, the method is retried once under the degraded
// configuration (splitting and inlining off, every check kept), and the
// degradation is counted in CompileRecord.Degraded. Only when both
// tiers fail does the error reach the runner. In ModeAdaptive the VM
// additionally carries hotness counters and an OnHot hook that promotes
// hot baseline code (see onHot).
func (s *System) newVM() *vm.VM {
	cfg := s.Cfg
	m := &vm.VM{
		World:        s.world,
		Customize:    cfg.Customization,
		SendExtra:    int64(cfg.SendOverheadExtra),
		InstrExtra:   int64(cfg.PerInstrOverhead),
		MissHandlers: cfg.CallSiteICMissHandlers,
		PICs:         cfg.PolymorphicInlineCaches,
		Strategy:     uint8(cfg.Strategy),
		Shared:       s.shared,
		Arena:        obj.NewArena(),
	}
	m.CompileMethod = func(meth *obj.Method, rmap *obj.Map) (*vm.Code, error) {
		c, err := s.compileMethodAt(s.firstTier(), meth, rmap, nil)
		if err == nil {
			return c, nil
		}
		c, err2 := s.compileMethodAt(s.pipeDeg, meth, rmap, nil)
		if err2 != nil {
			return nil, fmt.Errorf("%w (degraded retry also failed: %v)", err, err2)
		}
		m.Compile.Degraded++
		return c, nil
	}
	m.CompileBlock = func(b *ast.Block, upNames []string) (*vm.Code, error) {
		c, err := s.compileBlockAt(s.firstTier(), b, upNames)
		if err == nil {
			return c, nil
		}
		c, err2 := s.compileBlockAt(s.pipeDeg, b, upNames)
		if err2 != nil {
			return nil, fmt.Errorf("%w (degraded retry also failed: %v)", err, err2)
		}
		m.Compile.Degraded++
		return c, nil
	}
	if s.Mode == ModeAdaptive {
		m.PromoteThreshold = s.promoteThreshold
		m.OnHot = func(code *vm.Code) { s.onHot(m, code) }
	}
	return m
}

// onHot runs on m's goroutine when code first crosses the promotion
// threshold: harvest the receiver maps m's inline caches observed, then
// ask the shared cache to recompile the method one tier up in the
// background, seeded with that feedback. Promotion climbs two rungs —
// baseline (or degraded) code recompiles at the optimizing tier, and
// optimizing code that stays hot recompiles once more at the native
// tier; native code is the top and never promotes. The swap is atomic
// under the cache's generation discipline; a failed promotion keeps the
// current tier's code resident.
func (s *System) onHot(m *vm.VM, code *vm.Code) {
	if code.Origin.Meth == nil || code.TierLabel == core.TierNative.String() {
		// Blocks don't promote; native code is the top tier.
		return
	}
	target := s.pipeOpt
	if code.TierLabel == core.TierOptimizing.String() {
		target = s.pipeNative
	}
	fb := m.Harvest(code)
	m.Stats.Harvests++
	meth, rmap := code.Origin.Meth, code.Origin.RMap
	t0 := time.Now()
	started := s.shared.Promote(
		codecache.Key{Meth: meth, RMap: rmap, Strat: uint8(s.Cfg.Strategy)},
		func() (*vm.Code, error) {
			return s.compileMethodAt(target, meth, rmap, fb)
		},
		func(_ *vm.Code, err error, installed bool) {
			if installed {
				s.prom.record(time.Since(t0))
			}
		},
	)
	if started {
		m.Stats.Promotions++
	}
}

// Fork returns a worker system sharing this system's world, pipelines,
// code cache and compile log, with a fresh VM (own run statistics, own
// inline caches, own hotness bookkeeping). Only shared systems fork.
// Sources must be fully loaded before forking: workers read the world
// but must not LoadSource, and world loading is not synchronized with
// running workers.
func (s *System) Fork() (*System, error) {
	if s.shared == nil {
		return nil, fmt.Errorf("Fork requires a system built with NewSharedSystem")
	}
	w := &System{
		Cfg:              s.Cfg,
		Mode:             s.Mode,
		world:            s.world,
		pipeOpt:          s.pipeOpt,
		pipeNative:       s.pipeNative,
		pipeBase:         s.pipeBase,
		pipeDeg:          s.pipeDeg,
		shared:           s.shared,
		promoteThreshold: s.promoteThreshold,
		prom:             s.prom,
		log:              s.log,
		sources:          s.sources,
	}
	w.machine = w.newVM()
	w.machine.Budget = s.machine.Budget
	return w, nil
}

// SetBudget bounds every subsequent Call/Eval on this system (and on
// workers forked afterwards). Zero fields are unlimited; the zero
// Budget removes all limits. Exceeding a limit aborts the run with a
// RuntimeError of KindOutOfFuel (instructions, allocations) or
// KindStackOverflow (depth).
func (s *System) SetBudget(b Budget) { s.machine.Budget = b }

// ResetArena ends the VM's current arena epoch, recycling (or, when a
// value escaped to the world, abandoning to the GC) the chunks that
// backed this epoch's vectors and clones. Callers mark request
// boundaries with it — the serving layer resets when a pooled System
// returns to the pool, the bench harness between iterations. Must not
// be called while a Call/Eval is running on this system, and values
// returned by earlier calls must not be used afterwards unless they
// escaped to the world (which promotes them).
func (s *System) ResetArena() { s.machine.Arena.Reset() }

// ArenaStats reports the arena's lifecycle counters: epochs recycled
// cleanly and epochs abandoned to the GC because a value escaped.
func (s *System) ArenaStats() (resets, abandons int64) {
	return s.machine.Arena.Resets, s.machine.Arena.Abandons
}

// MarkEscaped pins v across the next ResetArena: a caller that holds a
// returned Value past the reset (the serving layer encodes results
// after the worker goes back to the pool) calls this first, so the
// arena abandons the epoch's chunks to the GC instead of recycling
// them. Immediates (ints, strings, nil) reference no arena storage and
// are free to hold forever; blocks are pinned unconditionally because
// their captured frames may alias arena values.
func (s *System) MarkEscaped(v Value) {
	switch v.K() {
	case obj.KObj:
		if o := v.Obj(); o != nil && !s.machine.Permanent(o.Ep) {
			s.machine.Arena.MarkEscaped()
		}
	case obj.KBlock:
		s.machine.Arena.MarkEscaped()
	}
}

// CacheStats snapshots the shared code cache's summed counters; ok is
// false for a private (non-shared) system.
func (s *System) CacheStats() (CacheStats, bool) {
	if s.shared == nil {
		return CacheStats{}, false
	}
	return s.shared.Stats(), true
}

// CacheShardStats snapshots the shared cache per shard, for tools that
// want to show lock spread.
func (s *System) CacheShardStats() []CacheStats {
	if s.shared == nil {
		return nil
	}
	return s.shared.ShardStats()
}

// DrainPromotions blocks until every in-flight background promotion has
// finished (installed, failed, or discarded). No-op outside adaptive
// mode. Benchmarks call it to separate warm-up from steady state.
func (s *System) DrainPromotions() {
	if s.shared != nil {
		s.shared.DrainPromotions()
	}
}

// PromotionStats summarizes promotion outcomes and mean install
// latency across this system and its forks.
func (s *System) PromotionStats() PromotionStats {
	var ps PromotionStats
	if s.shared == nil {
		return ps
	}
	cs := s.shared.Stats()
	ps.Installed, ps.Fails, ps.Discards = cs.Promotions, cs.PromoteFails, cs.PromoteDiscards
	s.prom.mu.Lock()
	if s.prom.installed > 0 {
		ps.MeanLatency = s.prom.total / time.Duration(s.prom.installed)
	}
	s.prom.mu.Unlock()
	return ps
}

// TierCounts sums compile-log entries per tier label ("baseline",
// "optimizing", "native", "degraded"), across every forked worker.
func (s *System) TierCounts() map[string]int {
	out := map[string]int{}
	for _, e := range s.log.snapshot() {
		out[e.Tier]++
	}
	return out
}

// World exposes the object universe (read-mostly; used by tools).
func (s *System) World() *World { return s.world }

// LoadSource parses src as lobby slot definitions and installs them.
// Successful loads are recorded for SaveImage; a load that fails after
// installing some slots leaves the world unreplayable and poisons
// image saving (parse errors and loads refused by a frozen world
// install nothing and poison nothing).
func (s *System) LoadSource(src string) error {
	f, err := parser.ParseFile(src)
	if err != nil {
		return err
	}
	if err := s.world.Load(f); err != nil {
		if s.world.FrozenEpoch() == 0 {
			s.sources.markDirty()
		}
		return err
	}
	s.world.Finalize()
	s.sources.add(src)
	return nil
}

// Call sends selector to the lobby with the given arguments, measuring
// execution. Statistics are reset per call; compiled code is reused
// across calls (dynamic compilation warms up once).
func (s *System) Call(selector string, args ...Value) (*Result, error) {
	return s.CallCtx(context.Background(), selector, args...)
}

// CallCtx is Call honoring ctx: cancellation or deadline expiry aborts
// the run promptly (at the next budget poll) with a RuntimeError of
// KindCancelled. The system's Budget (SetBudget) applies as well.
func (s *System) CallCtx(ctx context.Context, selector string, args ...Value) (*Result, error) {
	r := obj.Lookup(s.world.Lobby.Map, selector)
	if r == nil {
		return nil, fmt.Errorf("lobby does not define %q", selector)
	}
	if r.Slot.Kind != obj.MethodSlot {
		return nil, fmt.Errorf("lobby slot %q is not a method", selector)
	}
	s.machine.Stats = vm.RunStats{}
	v, err := s.machine.RunMethodCtx(ctx, r.Slot.Meth, obj.Obj(s.world.Lobby), args...)
	if err != nil {
		return nil, err
	}
	return &Result{
		Value:       v,
		Run:         s.machine.Stats,
		Compile:     s.machine.Compile,
		CompileTime: s.totalCompileTime(),
	}, nil
}

// Eval compiles and runs an expression sequence in a scratch method on
// the lobby: "|locals| statements".
func (s *System) Eval(src string) (*Result, error) {
	return s.EvalCtx(context.Background(), src)
}

// EvalCtx is Eval honoring ctx (see CallCtx). Each call builds a fresh
// scratch method; hosts that re-evaluate the same source should intern
// it with ParseEval/EvalProgramCtx so its compiled code is cached under
// one identity.
func (s *System) EvalCtx(ctx context.Context, src string) (*Result, error) {
	p, err := s.ParseEval(src)
	if err != nil {
		return nil, err
	}
	return s.EvalProgramCtx(ctx, p)
}

// EvalProgram is a parsed eval expression with a stable identity: the
// scratch method is built once, so the code cache key — which is the
// method's identity — is stable across runs and across forked workers.
// Eval/EvalCtx build a fresh scratch method per call, which is right
// for a one-shot CLI but would grow a shared cache without bound in a
// server that re-evaluates the same program; interning through
// ParseEval gives repeated programs the compile-once behaviour named
// methods already have.
type EvalProgram struct {
	// Source is the program text the expression was parsed from.
	Source string
	meth   *obj.Method
	blocks []*ast.Block
}

// ParseEval parses src as an expression sequence ("|locals|
// statements") into a reusable EvalProgram. The program may be run on
// this system and any system sharing its world (forked workers).
func (s *System) ParseEval(src string) (*EvalProgram, error) {
	m, err := parser.ParseMethodBody(src)
	if err != nil {
		return nil, err
	}
	p := &EvalProgram{
		Source: src,
		meth:   &obj.Method{Sel: "doIt", Ast: m, Holder: s.world.Lobby.Map},
	}
	// Record the blocks reachable from the body (and local
	// initializers) so DropEvalProgram can evict their out-of-line code
	// along with the method's.
	collect := func(x ast.Expr) {
		if b, ok := x.(*ast.Block); ok {
			p.blocks = append(p.blocks, b)
		}
	}
	for _, l := range m.Locals {
		ast.Walk(l.Init, collect)
	}
	for _, e := range m.Body {
		ast.Walk(e, collect)
	}
	return p, nil
}

// EvalProgramCtx runs p on this system, honoring ctx (see CallCtx).
// Compiled code is cached under p's identity: repeated runs — from
// this system or any fork — compile once.
func (s *System) EvalProgramCtx(ctx context.Context, p *EvalProgram) (*Result, error) {
	s.machine.Stats = vm.RunStats{}
	v, err := s.machine.RunMethodCtx(ctx, p.meth, obj.Obj(s.world.Lobby))
	if err != nil {
		return nil, err
	}
	return &Result{
		Value:       v,
		Run:         s.machine.Stats,
		Compile:     s.machine.Compile,
		CompileTime: s.totalCompileTime(),
	}, nil
}

// DropEvalProgram evicts p's compiled code (the scratch method for
// every receiver-map customization seen, and its out-of-line blocks)
// from the shared cache, so a host that interns a bounded set of eval
// programs can rotate old ones out without leaking cache entries.
// No-op on a private system — its per-VM caches die with the VM.
func (s *System) DropEvalProgram(p *EvalProgram) {
	if s.shared == nil || p == nil {
		return
	}
	strat := uint8(s.Cfg.Strategy)
	s.shared.Invalidate(codecache.Key{Meth: p.meth, RMap: s.world.Lobby.Map, Strat: strat})
	s.shared.Invalidate(codecache.Key{Meth: p.meth, Strat: strat}) // customization off
	for _, b := range p.blocks {
		s.shared.Invalidate(codecache.Key{Blk: b, Strat: strat})
	}
}

// CompileLog returns per-method compiler statistics in compilation
// order. For a shared system the log spans every forked worker.
func (s *System) CompileLog() []MethodCompile {
	return s.log.snapshot()
}

func (s *System) totalCompileTime() time.Duration {
	return s.log.totalDuration()
}

// GraphFor compiles selector (customized for the lobby) and returns
// its control flow graph — the artifact the paper's figures draw.
// Always uses the optimizing tier, whatever the system's mode.
func (s *System) GraphFor(selector string) (*Graph, *CompileStats, error) {
	r := obj.Lookup(s.world.Lobby.Map, selector)
	if r == nil || r.Slot.Kind != obj.MethodSlot {
		return nil, nil, fmt.Errorf("lobby does not define method %q", selector)
	}
	rmap := s.world.Lobby.Map
	if !s.Cfg.Customization {
		rmap = nil
	}
	return s.pipeOpt.Compiler().CompileMethod(r.Slot.Meth, rmap)
}

// CodeFor compiles selector to bytecode (through the VM's cache).
func (s *System) CodeFor(selector string) (*Code, error) {
	r := obj.Lookup(s.world.Lobby.Map, selector)
	if r == nil || r.Slot.Kind != obj.MethodSlot {
		return nil, fmt.Errorf("lobby does not define method %q", selector)
	}
	return s.machine.CodeFor(r.Slot.Meth, s.world.Lobby.Map)
}
