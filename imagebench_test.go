package selfgo_test

import (
	"bytes"
	"reflect"
	"testing"

	"selfgo"
	"selfgo/internal/bench"
)

// TestImageRoundTripBenchmarks extends the round-trip oracle to the
// full benchmark suite: every benchmark must produce a bit-identical
// check value and RunStats on a restored world as on the world the
// image was saved from. Any divergence means the image either lost
// state or resurrected state that should not exist.
func TestImageRoundTripBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark round-trip is slow; skipped in -short mode")
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			fresh, err := selfgo.NewTieredSystem(selfgo.NewSELF, selfgo.ModeOpt, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.LoadSource(b.Source); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if _, err := fresh.SaveImage(&buf, nil); err != nil {
				t.Fatalf("SaveImage: %v", err)
			}
			boot, err := selfgo.BootFromImage(&buf, selfgo.NewSELF, selfgo.ModeOpt, 0)
			if err != nil {
				t.Fatalf("BootFromImage: %v", err)
			}

			want, err := fresh.Call(b.Entry)
			if err != nil {
				t.Fatalf("fresh run: %v", err)
			}
			got, err := boot.Sys.Call(b.Entry)
			if err != nil {
				t.Fatalf("restored run: %v", err)
			}
			if got.Value.I() != want.Value.I() {
				t.Fatalf("check value diverged: restored %d, fresh %d", got.Value.I(), want.Value.I())
			}
			if b.HasExpect && got.Value.I() != b.Expect {
				t.Fatalf("restored check value %d, want %d", got.Value.I(), b.Expect)
			}
			if !reflect.DeepEqual(got.Run, want.Run) {
				t.Fatalf("RunStats diverged:\nfresh    %+v\nrestored %+v", want.Run, got.Run)
			}
		})
	}
}
