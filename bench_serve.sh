#!/bin/sh
# bench_serve.sh — the macro serving rail: one recorded trace, three
# serving topologies, one committed comparison (BENCH_serve.json).
#
#   ./bench_serve.sh             # run all three arms, write BENCH_serve.json
#
# The trace is K distinct programs interleaved R times at a fixed
# open-loop arrival rate. Each arm replays the SAME trace against a
# fresh stack:
#
#   single_replica   one selfserved               (the pre-cluster baseline)
#   router_affinity  3 replicas, selfrouter       (rendezvous-hashed cache keys)
#   router_random    3 replicas, selfrouter       (-policy random: the control)
#
# Alongside throughput and latency quantiles, each arm records how many
# programs each replica compiled (delta of selfgo_codecache_misses_total
# across the replay, plus selfserved_exprs_interned_total). The number
# the rail exists to pin: under affinity routing the FLEET compiles each
# distinct program exactly once — compiles_total == K — while random
# routing recompiles the same programs on every replica it scatters them
# to (>= 2x). The script fails if either bound breaks, so the committed
# BENCH_serve.json is an asserted artifact, not a screenshot.
set -eu
cd "$(dirname "$0")"

K=12       # distinct programs in the trace
R=30       # repetitions of each program
DT_US=1200 # open-loop interarrival gap between requests
SPEED=1    # replay speed multiplier

workdir=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/selfserved" ./cmd/selfserved
go build -o "$workdir/selfload" ./cmd/selfload
go build -o "$workdir/selfrouter" ./cmd/selfrouter

# One trace for every arm: K distinct upTo: bounds make K distinct
# program identities (affinity keys) with near-identical work.
awk -v K="$K" -v R="$R" -v DT="$DT_US" 'BEGIN{
    for (r = 0; r < R; r++)
        for (k = 0; k < K; k++) {
            dt = (r == 0 && k == 0) ? 0 : DT;
            printf("{\"dt_us\":%d,\"endpoint\":\"/eval\",\"body\":\"{\\\"expr\\\": \\\"| s <- 0 | 1 upTo: %d Do: [ :i | s: s + i ]. s\\\"}\"}\n", dt, 4000 + k);
        }
}' > "$workdir/trace.jsonl"
total=$((K * R))
echo "== trace: $K distinct programs x $R reps = $total requests, ${DT_US}us apart"

# boot_replica LOGFILE [extra flags...] — leaves the base URL in
# $BOOT_URL. Not a command substitution: the pid must land in the
# parent shell's $pids, and the child must not inherit a $(...) pipe.
boot_replica() {
    _log=$1; shift
    "$workdir/selfserved" -addr 127.0.0.1:0 -pool 4 "$@" >/dev/null 2>"$_log" &
    pids="$pids $!"
    wait_url "$_log" replica
}

boot_router() {
    _log=$1; _policy=$2; _replicas=$3
    "$workdir/selfrouter" -addr 127.0.0.1:0 -policy "$_policy" -replicas "$_replicas" >/dev/null 2>"$_log" &
    pids="$pids $!"
    wait_url "$_log" router
}

wait_url() {
    _wlog=$1; _what=$2
    BOOT_URL=""
    for _i in $(seq 1 50); do
        BOOT_URL=$(grep -o 'listening on http://[0-9.:]*' "$_wlog" | head -1 | sed 's/listening on //' || true)
        [ -n "$BOOT_URL" ] && break
        sleep 0.1
    done
    [ -n "$BOOT_URL" ] || { echo "bench_serve: $_what never came up" >&2; cat "$_wlog" >&2; exit 1; }
}

scrape() { "$workdir/selfload" -url "$1" -scrape "$2"; }

stop_all() {
    for p in $pids; do
        kill -TERM "$p" 2>/dev/null || true
        wait "$p" 2>/dev/null || true
    done
    pids=""
}

# run_arm NAME TARGET_URL REPLICA_URLS... — replays the trace, leaves
# the selfload summary in $workdir/NAME.json and per-replica compile
# deltas in $workdir/NAME.compiles (space-separated).
run_arm() {
    _name=$1; _target=$2; shift 2
    _before=""
    for _r in "$@"; do
        _before="$_before $(scrape "$_r" selfgo_codecache_misses_total)"
    done
    "$workdir/selfload" -url "$_target" -replay "$workdir/trace.jsonl" -speed "$SPEED" \
        -fail-on-error -json -q > "$workdir/$_name.json"
    _compiles=""
    _interned=""
    _i=1
    for _r in "$@"; do
        _b=$(echo "$_before" | awk -v n="$_i" '{print $n}')
        _a=$(scrape "$_r" selfgo_codecache_misses_total)
        _compiles="$_compiles $((_a - _b))"
        _interned="$_interned $(scrape "$_r" selfserved_exprs_interned_total)"
        _i=$((_i + 1))
    done
    echo "$_compiles" | sed 's/^ //' > "$workdir/$_name.compiles"
    echo "$_interned" | sed 's/^ //' > "$workdir/$_name.interned"
    echo "   $_name: compiles per replica: $(cat "$workdir/$_name.compiles")"
}

sum() { tr ' ' '\n' | awk '{s += $1} END {print s}'; }
to_json_list() { sed 's/ /, /g'; }

echo "== arm 1: single replica"
boot_replica "$workdir/single-r1.log"; r1=$BOOT_URL
run_arm single "$r1" "$r1"
stop_all

echo "== arm 2: 3 replicas behind selfrouter (affinity)"
boot_replica "$workdir/aff-r1.log"; a1=$BOOT_URL
boot_replica "$workdir/aff-r2.log"; a2=$BOOT_URL
boot_replica "$workdir/aff-r3.log"; a3=$BOOT_URL
boot_router "$workdir/aff-router.log" affinity "$a1,$a2,$a3"; ar=$BOOT_URL
run_arm affinity "$ar" "$a1" "$a2" "$a3"
stop_all

echo "== arm 3: 3 replicas behind selfrouter (random control)"
boot_replica "$workdir/rand-r1.log"; b1=$BOOT_URL
boot_replica "$workdir/rand-r2.log"; b2=$BOOT_URL
boot_replica "$workdir/rand-r3.log"; b3=$BOOT_URL
boot_router "$workdir/rand-router.log" random "$b1,$b2,$b3"; br=$BOOT_URL
run_arm random "$br" "$b1" "$b2" "$b3"
stop_all

single_total=$(sum < "$workdir/single.compiles")
affinity_total=$(sum < "$workdir/affinity.compiles")
random_total=$(sum < "$workdir/random.compiles")
echo "== compiles_total: single=$single_total affinity=$affinity_total random=$random_total (distinct programs: $K)"

# The two bounds the rail pins.
[ "$affinity_total" -eq "$K" ] || {
    echo "bench_serve: FAIL — affinity fleet compiled $affinity_total, want exactly $K (compile-once)"; exit 1; }
[ "$random_total" -ge $((2 * K)) ] || {
    echo "bench_serve: FAIL — random routing compiled $random_total, want >= $((2 * K)) (scatter control)"; exit 1; }
[ "$single_total" -eq "$K" ] || {
    echo "bench_serve: FAIL — single replica compiled $single_total, want exactly $K"; exit 1; }

cat > BENCH_serve.json <<EOF
{
  "note": "macro serving comparison: one open-loop trace replayed against three topologies; compiles are per-replica codecache-miss deltas across the replay. Affinity routing must keep the fleet at exactly one compile per distinct program; the random-policy control shows the redundant compilation affinity exists to avoid. Regenerate with ./bench_serve.sh.",
  "trace": {
    "distinct_programs": $K,
    "repetitions": $R,
    "requests": $total,
    "interarrival_us": $DT_US,
    "replay_speed": $SPEED
  },
  "arms": {
    "single_replica": {
      "replicas": 1,
      "compiles_per_replica": [$(to_json_list < "$workdir/single.compiles")],
      "compiles_total": $single_total,
      "exprs_interned_per_replica": [$(to_json_list < "$workdir/single.interned")],
      "selfload": $(cat "$workdir/single.json")
    },
    "router_affinity": {
      "replicas": 3,
      "compiles_per_replica": [$(to_json_list < "$workdir/affinity.compiles")],
      "compiles_total": $affinity_total,
      "exprs_interned_per_replica": [$(to_json_list < "$workdir/affinity.interned")],
      "selfload": $(cat "$workdir/affinity.json")
    },
    "router_random": {
      "replicas": 3,
      "compiles_per_replica": [$(to_json_list < "$workdir/random.compiles")],
      "compiles_total": $random_total,
      "exprs_interned_per_replica": [$(to_json_list < "$workdir/random.interned")],
      "selfload": $(cat "$workdir/random.json")
    }
  }
}
EOF
echo "bench_serve: wrote BENCH_serve.json (affinity $affinity_total == $K compiles, random $random_total >= $((2 * K)))"
