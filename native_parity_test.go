package selfgo

import (
	"context"
	"errors"
	"testing"
)

// The native backend (TierNative, internal/vm/backend_native.go) must
// be observationally indistinguishable from the interpreter: same
// values, same full RunStats to the cycle, same fault kinds, messages
// and backtraces (down to the pc — both backends run the identical
// fused instruction stream), and same budget-poll timing at every
// stride. These tests pin that contract program by program; the
// benchmark-level oracle lives in native_differential_test.go.

// nativeSys builds an eagerly-native private-cache system — the exact
// counterpart of newSys's interpreter system, differing only in the
// execution backend.
func nativeSys(t *testing.T, cfg Config, src string) *System {
	t.Helper()
	sys, err := newSystem(cfg, nil, ModeNative, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSource(src); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestNativeBackendSelection: ModeNative actually lowers and runs
// closure-threaded code; ModeOpt never does.
func TestNativeBackendSelection(t *testing.T) {
	src := `go = ( | s <- 0 | 1 upTo: 50 Do: [ :i | s: s + i ]. s ).`
	nat := nativeSys(t, NewSELF, src)
	if got := callInt(t, nat, "go"); got != 1225 {
		t.Fatalf("native go = %d, want 1225", got)
	}
	c, err := nat.CodeFor("go")
	if err != nil {
		t.Fatal(err)
	}
	if !c.HasNative() {
		t.Error("ModeNative compiled code without a native lowering")
	}
	if c.TierLabel != TierNative.String() {
		t.Errorf("tier label %q, want %q", c.TierLabel, TierNative)
	}
	tc := nat.TierCounts()
	if tc["native"] == 0 {
		t.Errorf("TierCounts = %v, want native compiles", tc)
	}
	for tier := range tc {
		if tier != "native" {
			t.Errorf("eager native system compiled at tier %q: %v", tier, tc)
		}
	}

	opt := newSys(t, NewSELF, src)
	callInt(t, opt, "go")
	if c, err := opt.CodeFor("go"); err != nil || c.HasNative() {
		t.Errorf("ModeOpt code native=%v err=%v, want no lowering", c.HasNative(), err)
	}
}

// TestNativeConformanceBitIdentical runs every conformance program
// under every compiler configuration on both backends and demands
// bit-identical results: value, the full RunStats, and the compile
// record (the native tier adds a lowering, never different code).
func TestNativeConformanceBitIdentical(t *testing.T) {
	for _, p := range conformancePrograms {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for _, cfg := range Configs() {
				interp := newSys(t, cfg, p.src)
				native := nativeSys(t, cfg, p.src)
				ires, err := interp.Call(p.sel, p.args...)
				if err != nil {
					t.Fatalf("[%s] interp: %v", cfg.Name, err)
				}
				nres, err := native.Call(p.sel, p.args...)
				if err != nil {
					t.Fatalf("[%s] native: %v", cfg.Name, err)
				}
				if ires.Value.I() != nres.Value.I() {
					t.Errorf("[%s] value interp=%d native=%d", cfg.Name, ires.Value.I(), nres.Value.I())
				}
				if ires.Run != nres.Run {
					t.Errorf("[%s] RunStats diverged:\ninterp: %+v\nnative: %+v", cfg.Name, ires.Run, nres.Run)
				}
				if ires.Compile.Methods != nres.Compile.Methods || ires.Compile.CodeBytes != nres.Compile.CodeBytes {
					t.Errorf("[%s] compile record diverged: interp=(%d methods, %d bytes) native=(%d methods, %d bytes)",
						cfg.Name, ires.Compile.Methods, ires.Compile.CodeBytes,
						nres.Compile.Methods, nres.Compile.CodeBytes)
				}
			}
		})
	}
}

// TestNativeFaultParity: faulting programs fail identically on both
// backends — kind, message, and the full Self-level backtrace including
// frame pcs (the backends share one fused instruction stream, so even
// pcs must agree, unlike the fused-vs-unfused comparison). The
// post-fault RunStats must also match: the fault fires at the same
// instruction on both sides.
func TestNativeFaultParity(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		src   string
		entry string
		args  []Value
	}{
		{
			name: "dnu depth",
			cfg:  ST80,
			src: `
outer = ( middle ).
middle = ( inner ).
inner = ( 3 zorkify ).
`,
			entry: "outer",
		},
		{
			// DNU raised from inside a closure-compiled block body, at
			// depth, through the prelude's loop machinery.
			name: "dnu inside block",
			cfg:  ST80,
			src: `
run = ( | v | v: (vector copySize: 4 FillWith: 2). v do: [ :e | e frobnicate ]. 0 ).
`,
			entry: "run",
		},
		{
			name:  "unchecked div zero",
			cfg:   OptimizedC,
			src:   `crash: n = ( (7 * 3) / n ).`,
			entry: "crash:",
			args:  []Value{IntValue(0)},
		},
		{
			name: "unchecked elem oob",
			cfg:  OptimizedC,
			src: `
vecAt: i = ( | v | v: (vector copySize: 3 FillWith: 0). v at: i ).
`,
			entry: "vecAt:",
			args:  []Value{IntValue(99)},
		},
		{
			// Checked overflow cascading into the failure path. This
			// one succeeds (the failure path yields a value) — the
			// test then pins value and stats parity across the checked
			// branch instead of fault parity.
			name:  "overflow",
			cfg:   NewSELF,
			src:   `blow: n = ( (n * n) * n ).`,
			entry: "blow:",
			args:  []Value{IntValue(1 << 40)},
		},
		{
			// NLR out of a block whose home frame already returned: the
			// dead-home check in the native NLReturn closure. ST-80
			// keeps make's activation out of line, so by the time the
			// stashed block runs its home is dead.
			name: "dead home nlr",
			cfg:  ST80,
			src: `
stash <- nil.
make = ( stash: [ ^ 1 ]. 0 ).
run = ( make. stash value ).
`,
			entry: "run",
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			interp := newSys(t, c.cfg, c.src)
			native := nativeSys(t, c.cfg, c.src)
			ires, ierr := interp.Call(c.entry, c.args...)
			istats := interp.machine.Stats
			nres, nerr := native.Call(c.entry, c.args...)
			nstats := native.machine.Stats
			if (ierr == nil) != (nerr == nil) {
				t.Fatalf("error presence mismatch: interp=%v native=%v", ierr, nerr)
			}
			if ierr == nil {
				// Both took the failure path to a value (overflow):
				// pin value and stats parity across that branch.
				if ires.Value.I() != nres.Value.I() {
					t.Errorf("value interp=%d native=%d", ires.Value.I(), nres.Value.I())
				}
				if istats != nstats {
					t.Errorf("stats diverged:\ninterp: %+v\nnative: %+v", istats, nstats)
				}
				return
			}
			ik, _ := ErrorKind(ierr)
			nk, _ := ErrorKind(nerr)
			if ik != nk {
				t.Errorf("kind interp=%v native=%v", ik, nk)
			}
			var ire, nre *RuntimeError
			if !errors.As(ierr, &ire) || !errors.As(nerr, &nre) {
				t.Fatalf("not RuntimeErrors: interp=%T native=%T", ierr, nerr)
			}
			if ire.Msg != nre.Msg {
				t.Errorf("message interp=%q native=%q", ire.Msg, nre.Msg)
			}
			if len(ire.Trace) != len(nre.Trace) {
				t.Fatalf("trace depth interp=%d native=%d\ninterp:\n%s\nnative:\n%s",
					len(ire.Trace), len(nre.Trace), ire.Backtrace(), nre.Backtrace())
			}
			for i := range ire.Trace {
				if ire.Trace[i] != nre.Trace[i] {
					t.Errorf("trace frame %d: interp=%+v native=%+v", i, ire.Trace[i], nre.Trace[i])
				}
			}
			if istats != nstats {
				t.Errorf("stats at fault diverged:\ninterp: %+v\nnative: %+v", istats, nstats)
			}
		})
	}
}

// TestNativeBudgetParity: budget faults and context cancellation fire
// at the identical instruction on both backends at every poll stride —
// the native driver replicates the interpreter's per-instruction
// accounting exactly, so OutOfFuel/StackOverflow/Cancelled timing (and
// therefore the whole post-abort RunStats) cannot drift.
func TestNativeBudgetParity(t *testing.T) {
	const src = `
burn = ( | s <- 0 | [ true ] whileTrue: [ s: s + 1. _NewVec: 4 ]. s ).
dive: n = ( dive: n + 1 ).
`
	strides := []int64{1, 7, 64, 1024}
	cases := []struct {
		name  string
		entry string
		args  []Value
		bud   Budget
		ctx   func() context.Context
		kind  ErrKind
	}{
		{name: "out of fuel", entry: "burn", bud: Budget{MaxInstrs: 7777}, kind: KindOutOfFuel},
		{name: "out of allocs", entry: "burn", bud: Budget{MaxAllocs: 55}, kind: KindOutOfFuel},
		{name: "max depth", entry: "dive:", args: []Value{IntValue(0)}, bud: Budget{MaxDepth: 25}, kind: KindStackOverflow},
		{
			name: "cancelled", entry: "burn", bud: Budget{},
			ctx: func() context.Context {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				return ctx
			},
			kind: KindCancelled,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, stride := range strides {
				interp := newSys(t, NewSELF, src)
				native := nativeSys(t, NewSELF, src)
				bud := c.bud
				bud.PollEvery = stride
				interp.SetBudget(bud)
				native.SetBudget(bud)
				ctx := context.Background()
				if c.ctx != nil {
					ctx = c.ctx()
				}
				_, ierr := interp.CallCtx(ctx, c.entry, c.args...)
				istats := interp.machine.Stats
				if c.ctx != nil {
					ctx = c.ctx()
				}
				_, nerr := native.CallCtx(ctx, c.entry, c.args...)
				nstats := native.machine.Stats
				if k, ok := ErrorKind(ierr); !ok || k != c.kind {
					t.Fatalf("stride %d: interp kind=%v (ok=%v), want %v; err: %v", stride, k, ok, c.kind, ierr)
				}
				if k, ok := ErrorKind(nerr); !ok || k != c.kind {
					t.Fatalf("stride %d: native kind=%v (ok=%v), want %v; err: %v", stride, k, ok, c.kind, nerr)
				}
				if istats != nstats {
					t.Errorf("stride %d: stats at abort diverged:\ninterp: %+v\nnative: %+v", stride, istats, nstats)
				}
			}
		})
	}
}

// TestNativeInvalidationParity: redefining a method invalidates its
// native code exactly like interpreter code; the recompile is again
// lowered, and values and stats track the interpreter across the
// redefinition.
func TestNativeInvalidationParity(t *testing.T) {
	const v1 = `answer = ( | s <- 0 | 1 upTo: 20 Do: [ :i | s: s + i ]. s ).`
	const v2 = `answer = ( | s <- 1 | 1 upTo: 20 Do: [ :i | s: s * 2 ]. s ).`
	interp := newSys(t, NewSELF, v1)
	native := nativeSys(t, NewSELF, v1)
	for round, redef := range []string{"", v2} {
		if redef != "" {
			if err := interp.LoadSource(redef); err != nil {
				t.Fatal(err)
			}
			if err := native.LoadSource(redef); err != nil {
				t.Fatal(err)
			}
		}
		ires, err := interp.Call("answer")
		if err != nil {
			t.Fatal(err)
		}
		nres, err := native.Call("answer")
		if err != nil {
			t.Fatal(err)
		}
		if ires.Value.I() != nres.Value.I() {
			t.Errorf("round %d: value interp=%d native=%d", round, ires.Value.I(), nres.Value.I())
		}
		if ires.Run != nres.Run {
			t.Errorf("round %d: RunStats diverged:\ninterp: %+v\nnative: %+v", round, ires.Run, nres.Run)
		}
		c, err := native.CodeFor("answer")
		if err != nil {
			t.Fatal(err)
		}
		if !c.HasNative() {
			t.Errorf("round %d: recompiled code lost its native lowering", round)
		}
	}
	if tc := native.TierCounts(); tc["native"] < 2 {
		t.Errorf("TierCounts = %v, want >= 2 native compiles after redefinition", tc)
	}
}
