package selfgo

import "testing"

// Conformance programs: realistic object-oriented code exercising
// prototypes, polymorphism, closures and collections together. Every
// compiler configuration must agree on every program.

var conformancePrograms = []struct {
	name string
	src  string
	sel  string
	args []Value
	want int64
}{
	{
		name: "linked-list",
		src: `
		node = (| parent* = lobby. val <- 0. next.
		    setVal: v = ( val: v. self ) |).
		listSum: n = ( | head. cur. sum <- 0 |
		    n downTo: 1 Do: [ :i |
		        | fresh |
		        fresh: (node _Clone setVal: i).
		        fresh next: head.
		        head: fresh ].
		    cur: head.
		    [ cur notNil ] whileTrue: [
		        sum: sum + cur val.
		        cur: cur next ].
		    sum ).`,
		sel: "listSum:", args: []Value{IntValue(100)}, want: 5050,
	},
	{
		name: "stack-machine",
		src: `
		stack = (| parent* = lobby. cells. top <- 0.
		    init = ( cells: vector copySize: 64. top: 0. self ).
		    push: v = ( cells at: top Put: v. top: top + 1. self ).
		    pop = ( top: top - 1. cells at: top ).
		    isEmpty = ( top = 0 ) |).
		rpn = ( | s |
		    "Evaluate (3 4 +) (2 *) (10 -) = 4 with a stack machine."
		    s: stack _Clone init.
		    s push: 3. s push: 4.
		    s push: (s pop + s pop).
		    s push: 2.
		    s push: (s pop * s pop).
		    s push: 10.
		    ^ 0 - (s pop - s pop) ).`,
		sel: "rpn", want: 4,
	},
	{
		name: "polymorphic-shapes",
		src: `
		square = (| parent* = lobby. side <- 0.
		    setSide: s = ( side: s. self ).
		    area = ( side * side ) |).
		rect = (| parent* = lobby. w <- 0. h <- 0.
		    setW: a H: b = ( w: a. h: b. self ).
		    area = ( w * h ) |).
		tri = (| parent* = lobby. b <- 0. ht <- 0.
		    setB: a H: c = ( b: a. ht: c. self ).
		    area = ( (b * ht) / 2 ) |).
		totalArea = ( | shapes. sum <- 0 |
		    shapes: vector copySize: 6.
		    shapes at: 0 Put: (square _Clone setSide: 3).
		    shapes at: 1 Put: (rect _Clone setW: 4 H: 5).
		    shapes at: 2 Put: (tri _Clone setB: 6 H: 7).
		    shapes at: 3 Put: (square _Clone setSide: 2).
		    shapes at: 4 Put: (rect _Clone setW: 1 H: 9).
		    shapes at: 5 Put: (tri _Clone setB: 10 H: 3).
		    shapes do: [ :s | sum: sum + s area ].
		    sum ).`,
		sel: "totalArea", want: 9 + 20 + 21 + 4 + 9 + 15,
	},
	{
		name: "sort-with-comparator",
		src: `
		sortVec: v By: cmp = ( | n |
		    n: v size.
		    0 upTo: n Do: [ :i |
		        0 upTo: n - 1 - i Do: [ :j |
		            ((cmp value: (v at: j) Value: (v at: j + 1)) not) ifTrue: [
		                | t |
		                t: v at: j.
		                v at: j Put: (v at: j + 1).
		                v at: j + 1 Put: t ] ] ].
		    v ).
		go = ( | v. chk <- 0 |
		    v: vector copySize: 8.
		    v fillFrom: [ :i | (i * 37) % 11 ].
		    sortVec: v By: [ :a :b | a <= b ].
		    v withIndexDo: [ :e :i | chk: (chk + (e * (i + 1))) % 999983 ].
		    "descending this time"
		    sortVec: v By: [ :a :b | a >= b ].
		    v withIndexDo: [ :e :i | chk: ((chk * 10) + e) % 999983 ].
		    chk ).`,
		sel: "go", want: 0, // cross-config consistency only; computed below
	},
	{
		name: "state-machine",
		src: `
		"A traffic-light cycle driven by message dispatch."
		red = (| parent* = lobby. tag = ( 0 ) |).
		green = (| parent* = lobby. tag = ( 1 ) |).
		yellow = (| parent* = lobby. tag = ( 2 ) |).
		nextOf: s = (
		    ((s tag) = 0) ifTrue: [ ^ green ].
		    ((s tag) = 1) ifTrue: [ ^ yellow ].
		    red ).
		cycle: n = ( | s. trace <- 0 |
		    s: red.
		    n timesRepeat: [
		        trace: (trace * 3 + s tag) % 999983.
		        s: (nextOf: s) ].
		    trace ).`,
		sel: "cycle:", args: []Value{IntValue(30)}, want: 0, // consistency only
	},
	{
		name: "memoized-fib",
		src: `
		memo <- nil.
		mfib: n = (
		    (n < 2) ifTrue: [ ^ n ].
		    ((memo at: n) >= 0) ifTrue: [ ^ memo at: n ].
		    memo at: n Put: (mfib: n - 1) + (mfib: n - 2).
		    memo at: n ).
		go: n = (
		    memo: vector copySize: n + 1 FillWith: -1.
		    mfib: n ).`,
		sel: "go:", args: []Value{IntValue(25)}, want: 75025,
	},
	{
		name: "matrix-transpose-trace",
		src: `
		go: n = ( | m. tr <- 0 |
		    m: vector copySize: n.
		    0 upTo: n Do: [ :i |
		        | row |
		        row: vector copySize: n.
		        0 upTo: n Do: [ :j | row at: j Put: (i * n) + j ].
		        m at: i Put: row ].
		    "trace of the transpose equals trace of the original"
		    0 upTo: n Do: [ :i | tr: tr + ((m at: i) at: i) ].
		    tr ).`,
		sel: "go:", args: []Value{IntValue(10)}, want: 0 + 11 + 22 + 33 + 44 + 55 + 66 + 77 + 88 + 99,
	},
	{
		name: "accumulator-generator",
		src: `
		mkAcc = ( | total <- 0 | [ :x | total: total + x. total ] ).
		go = ( | acc1. acc2 |
		    acc1: mkAcc.
		    acc2: mkAcc.
		    acc1 value: 10.
		    acc1 value: 20.
		    acc2 value: 5.
		    ((acc1 value: 0) * 100) + (acc2 value: 0) ).`,
		sel: "go", want: 3005,
	},

	// The remaining programs stress edge cases of the closure-threaded
	// native backend (internal/vm/backend_native.go): non-local return
	// unwinding through closure-dispatched frames, escaped closures
	// outliving their frames, deep recursion across the frame pool, and
	// polymorphic sends interleaved with block invocation — the shapes
	// most likely to diverge between runFast and runNative.
	{
		// ^ inside the withIndexDo: block non-locally returns out of
		// findIn:, unwinding through the prelude's loop activations.
		name: "nlr-through-send-chain",
		src: `
		find: n In: v = (
		    v withIndexDo: [ :e :i | (e = n) ifTrue: [ ^ i ] ].
		    0 - 1 ).
		go = ( | v. s <- 0 |
		    v: vector copySize: 20.
		    v fillFrom: [ :i | (i * 7) % 20 ].
		    0 upTo: 20 Do: [ :k | s: s + (find: k In: v) ].
		    s ).`,
		sel: "go", want: 190,
	},
	{
		// Each stored closure captures a distinct iteration's frame;
		// invoking them later forces the escaped-frame pool exemption.
		name: "escaping-closure-vector",
		src: `
		mkAdders: n = ( | v |
		    v: vector copySize: n.
		    0 upTo: n Do: [ :i | v at: i Put: [ :x | x + i ] ].
		    v ).
		go = ( | v. s <- 0 |
		    v: (mkAdders: 10).
		    0 upTo: 10 Do: [ :i | s: s + ((v at: i) value: i * i) ].
		    s ).`,
		sel: "go", want: 330,
	},
	{
		// Deep recursion churns pushed activations right at the
		// tier-promotion boundary when run adaptively.
		name: "deep-recursion",
		src: `
		deepSum: n = ( (n = 0) ifTrue: [ 0 ] False: [ n + (deepSum: n - 1) ] ).
		go = ( deepSum: 2000 ).`,
		sel: "go", want: 2001000,
	},
	{
		// Polymorphic twice: send alternates receivers every iteration
		// while handing each a fresh block — PIC feedback interleaved
		// with the block value protocol.
		name: "interleaved-dispatch-blocks",
		src: `
		doubler = (| parent* = lobby. twice: blk = ( (blk value) + (blk value) ) |).
		tripler = (| parent* = lobby. twice: blk = ( 3 * (blk value) ) |).
		go = ( | s <- 0. o |
		    1 upTo: 21 Do: [ :i |
		        o: (((i % 2) = 0) ifTrue: [ doubler ] False: [ tripler ]).
		        s: s + (o twice: [ i ]) ].
		    s ).`,
		sel: "go", want: 520,
	},
	{
		// A stored block whose conditional ^ returns from the enclosing
		// method only on some invocations: the NLR path and the normal
		// fall-through path must agree across backends.
		name: "conditional-nlr",
		src: `
		clamp: n = ( | blk |
		    blk: [ :x | (x > 100) ifTrue: [ ^ 100 ]. x * 2 ].
		    1 + (blk value: n) ).
		go = ( | s <- 0 |
		    0 upTo: 9 Do: [ :i | s: s + (clamp: i * 30) ].
		    s ).`,
		sel: "go", want: 864,
	},
}

// TestConformanceAcrossConfigs runs each program under every system
// and demands agreement (and the known value where stated).
func TestConformanceAcrossConfigs(t *testing.T) {
	for _, p := range conformancePrograms {
		p := p
		t.Run(p.name, func(t *testing.T) {
			var ref int64
			var refSet bool
			for _, cfg := range Configs() {
				sys := newSys(t, cfg, p.src)
				got := callInt(t, sys, p.sel, p.args...)
				if !refSet {
					ref, refSet = got, true
					if p.want != 0 && got != p.want {
						t.Errorf("[%s] got %d, want %d", cfg.Name, got, p.want)
					}
				} else if got != ref {
					t.Errorf("[%s] got %d, others got %d", cfg.Name, got, ref)
				}
			}
		})
	}
}
