package selfgo

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"selfgo/internal/ast"
	"selfgo/internal/codecache"
	"selfgo/internal/core"
	"selfgo/internal/image"
	"selfgo/internal/ir"
	"selfgo/internal/obj"
	"selfgo/internal/vm"
)

// ImageInfo summarizes a saved world image.
type ImageInfo struct {
	// Hash is the hex sha256 of the image payload; BootFromImage
	// reports the same hash, so operators can match a running replica
	// to the file it booted from.
	Hash  string
	Bytes int
	// Objects is the number of serialized objects, Sources the number
	// of recorded load texts, Programs the number of interned eval
	// programs.
	Sources  int
	Programs int
	Objects  int
	// Manifest counts the persisted code-cache entries; Skipped the
	// cache entries that were dropped because their code is no longer
	// reachable from the world (redefined methods, rotated-out eval
	// programs, blocks no compiled code references anymore).
	Manifest int
	Skipped  int
}

// SaveImage serializes the system's world, the given interned eval
// programs, and the shared code cache's manifest (keys, tiers,
// hotness — never machine code) to out. The caller must ensure the
// system is quiescent: no Call/Eval running on it or any fork, no
// in-flight background promotion mutating the cache mid-walk (the
// serving layer saves after draining).
func (s *System) SaveImage(out io.Writer, progs []*EvalProgram) (*ImageInfo, error) {
	srcs, dirty := s.sources.snapshot()
	if dirty {
		return nil, fmt.Errorf("cannot save image: an earlier source load failed partway, so the world no longer matches any replayable source sequence")
	}
	evals := make([]image.Eval, len(progs))
	for i, p := range progs {
		evals[i] = image.Eval{Source: p.Source, Meth: p.meth}
	}
	manifest, preSkipped := s.manifestEntries()
	img, skipped, err := image.Snapshot(s.world, srcs, evals, manifest)
	if err != nil {
		return nil, err
	}
	data := image.Encode(img)
	if _, err := out.Write(data); err != nil {
		return nil, fmt.Errorf("writing image: %w", err)
	}
	return &ImageInfo{
		Hash:     img.Hash,
		Bytes:    len(data),
		Sources:  len(img.Sources),
		Programs: len(img.EvalSources),
		Objects:  len(img.Objects),
		Manifest: len(img.Manifest),
		Skipped:  skipped + preSkipped,
	}, nil
}

// manifestEntries drains the shared cache into pointer-form manifest
// entries. Block entries need the capture-name list their compilation
// used; it is recovered from the MkBlk instructions of the cached
// codes (the VM derives it the same way, by sorting the closure's
// captured names), and a block no cached code creates anymore is
// skipped — nothing could ever run it.
func (s *System) manifestEntries() ([]image.Manifest, int) {
	if s.shared == nil {
		return nil, 0
	}
	type kc struct {
		k codecache.Key
		c *vm.Code
	}
	var all []kc
	s.shared.ForEach(func(k codecache.Key, c *vm.Code) { all = append(all, kc{k, c}) })
	upNames := map[*ast.Block][]string{}
	for _, e := range all {
		for i := range e.c.Instrs {
			in := &e.c.Instrs[i]
			if in.Op != ir.MkBlk || in.Blk == nil {
				continue
			}
			if _, ok := upNames[in.Blk]; ok {
				continue
			}
			names := make([]string, 0, len(in.Caps))
			for _, cap := range in.Caps {
				names = append(names, cap.Name)
			}
			sort.Strings(names)
			upNames[in.Blk] = names
		}
	}
	var out []image.Manifest
	skipped := 0
	for _, e := range all {
		m := image.Manifest{
			Tier:        e.c.TierLabel,
			Invocations: e.c.Hot.Invocations(),
			Backedges:   e.c.Hot.Backedges(),
			Requested:   e.c.Hot.Requested(),
		}
		switch {
		case e.k.Blk != nil:
			names, ok := upNames[e.k.Blk]
			if !ok {
				skipped++
				continue
			}
			m.Blk, m.UpNames = e.k.Blk, names
		case e.k.Meth != nil:
			m.Meth, m.RMap = e.k.Meth, e.k.RMap
		default:
			skipped++
			continue
		}
		out = append(out, m)
	}
	return out, skipped
}

// Boot is a system restored from a world image, plus everything the
// host needs to finish warming it: the replayed source texts (to seed
// load dedup tables), the re-interned eval programs, and the code
// manifest consumed by Prepromote.
type Boot struct {
	Sys *System
	// Hash identifies the image (hex sha256 of its payload).
	Hash string
	// Sources are the replayed load texts, in load order.
	Sources []string
	// Programs are the image's interned eval programs, re-parsed
	// against the restored world, in image order.
	Programs []*EvalProgram
	// RestoreDuration covers decode, source replay and state restore
	// (not pre-promotion).
	RestoreDuration time.Duration

	manifest []image.RestoredManifest
}

// ManifestLen reports how many code-cache entries the image carries.
func (b *Boot) ManifestLen() int { return len(b.manifest) }

// BootFromImage reads a world image and builds a shared-cache system
// from it: the recorded sources are replayed (the image's own prelude
// text first — nothing else is auto-loaded), the saved object state is
// restored on top, and the eval programs are re-parsed. Restored maps
// are ordinary world maps, wired to the same OnMapChange →
// InvalidateMap hook as a cold boot, so post-restore map mutations
// invalidate preloaded code exactly like live compiles. Call
// Prepromote afterwards to rebuild the hot code set before taking
// traffic.
func BootFromImage(r io.Reader, cfg Config, mode TierMode, promoteThreshold int64) (*Boot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("reading image: %w", err)
	}
	img, err := image.Decode(data)
	if err != nil {
		return nil, err
	}
	if len(img.Sources) == 0 {
		return nil, fmt.Errorf("image records no sources")
	}
	if promoteThreshold <= 0 {
		promoteThreshold = DefaultPromoteThreshold
	}
	t0 := time.Now()
	s, err := newSystem(cfg, codecache.New[*vm.Code](), mode, promoteThreshold, false)
	if err != nil {
		return nil, err
	}
	for i, src := range img.Sources {
		if err := s.LoadSource(src); err != nil {
			return nil, fmt.Errorf("replaying image source %d: %w", i, err)
		}
	}
	progs := make([]*EvalProgram, len(img.EvalSources))
	meths := make([]*obj.Method, len(img.EvalSources))
	for i, src := range img.EvalSources {
		p, err := s.ParseEval(src)
		if err != nil {
			return nil, fmt.Errorf("re-parsing image eval program %d: %w", i, err)
		}
		progs[i], meths[i] = p, p.meth
	}
	res, err := image.Restore(img, s.world, meths)
	if err != nil {
		return nil, err
	}
	return &Boot{
		Sys:             s,
		Hash:            img.Hash,
		Sources:         append([]string(nil), img.Sources...),
		Programs:        progs,
		RestoreDuration: time.Since(t0),
		manifest:        res.Manifest,
	}, nil
}

// Prepromote re-compiles every manifest entry at its recorded tier
// through the shared cache, restoring its hotness counters, so the
// request path finds hot code already resident instead of re-earning
// promotions under load. Blocking; hosts that warm in the background
// run it in a goroutine and gate readiness on its return. Returns how
// many entries compiled and how many failed (a failed entry falls back
// to normal on-demand compilation — warm start is an optimization,
// never a correctness gate).
func (b *Boot) Prepromote(workers int) (compiled, failed int) {
	s := b.Sys
	if s.shared == nil || len(b.manifest) == 0 {
		return 0, 0
	}
	if workers < 1 {
		workers = 1
	}
	var mu sync.Mutex
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, ent := range b.manifest {
		wg.Add(1)
		sem <- struct{}{}
		go func(ent image.RestoredManifest) {
			defer func() { <-sem; wg.Done() }()
			ok := s.prepromoteOne(ent)
			mu.Lock()
			if ok {
				compiled++
			} else {
				failed++
			}
			mu.Unlock()
		}(ent)
	}
	wg.Wait()
	return compiled, failed
}

// pipelineFor maps a recorded tier label back to this system's
// pipeline for that tier.
func (s *System) pipelineFor(tier string) *core.Pipeline {
	switch tier {
	case core.TierNative.String():
		return s.pipeNative
	case core.TierOptimizing.String():
		return s.pipeOpt
	case core.TierDegraded.String():
		return s.pipeDeg
	default:
		return s.pipeBase
	}
}

func (s *System) prepromoteOne(ent image.RestoredManifest) bool {
	p := s.pipelineFor(ent.Tier)
	strat := uint8(s.Cfg.Strategy)
	var key codecache.Key
	var compile func() (*vm.Code, error)
	if ent.Blk != nil {
		key = codecache.Key{Blk: ent.Blk, Strat: strat}
		compile = func() (*vm.Code, error) { return s.compileBlockAt(p, ent.Blk, ent.UpNames) }
	} else {
		key = codecache.Key{Meth: ent.Meth, RMap: ent.RMap, Strat: strat}
		compile = func() (*vm.Code, error) { return s.compileMethodAt(p, ent.Meth, ent.RMap, nil) }
	}
	c, _, err := s.shared.Get(key, compile)
	if err != nil {
		return false
	}
	// Restore hotness with requested=true: the code is already at its
	// recorded tier, so the promotion that the counters would trigger
	// has in effect already happened.
	c.Hot.Seed(ent.Invocations, ent.Backedges, ent.Requested)
	return true
}

// ForkCOW freezes this system's world (first call; later calls reuse
// the frozen base) and returns a worker whose writes to base objects
// go to private per-fork shadow copies: cheap isolated forks over one
// shared restored base. Once frozen, the base world refuses further
// source loads, and the parent system's own VM must stay quiescent —
// run all work on the forks. Identity is preserved (shadows are
// storage, never Values), so maps, inline caches and Eq behave exactly
// as on a private world; only field and element state diverges per
// fork.
func (s *System) ForkCOW() (*System, error) {
	if s.shared == nil {
		return nil, fmt.Errorf("ForkCOW requires a system built with a shared cache")
	}
	baseEp := s.world.Freeze()
	f, err := s.Fork()
	if err != nil {
		return nil, err
	}
	f.machine.EnableCOW(baseEp)
	return f, nil
}

// COWShadowCount reports how many base objects this system's VM has
// shadowed; zero for non-COW systems.
func (s *System) COWShadowCount() int { return s.machine.COWShadowCount() }
