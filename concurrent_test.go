package selfgo

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSharedCache runs generated programs on 8 goroutines
// that share one world and one code cache, and checks every worker's
// result against a single-threaded oracle system. With -race this is
// the main concurrency test for the shared cache: the first wave of
// calls starts cold and simultaneously, so the workers pile up on the
// single-flight path, and the cache counters must still show each
// customization compiled exactly once.
func TestConcurrentSharedCache(t *testing.T) {
	const workers = 8
	const reps = 3
	seeds := []int64{1, 7, 19, 42, 101}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := newProgGen(seed).generate(4, 2, 12)

			// Single-threaded oracle on a private, unshared system.
			oracle, err := NewSystem(NewSELF)
			if err != nil {
				t.Fatal(err)
			}
			if err := oracle.LoadSource(src); err != nil {
				t.Fatalf("seed %d does not parse: %v\n%s", seed, err, src)
			}
			want, err := oracle.Call("fuzzMain")
			if err != nil {
				t.Fatalf("oracle: %v\n%s", err, src)
			}

			root, err := NewSharedSystem(NewSELF)
			if err != nil {
				t.Fatal(err)
			}
			if err := root.LoadSource(src); err != nil {
				t.Fatal(err)
			}
			systems := make([]*System, workers)
			systems[0] = root
			for i := 1; i < workers; i++ {
				if systems[i], err = root.Fork(); err != nil {
					t.Fatal(err)
				}
			}

			got := make([]int64, workers)
			errs := make([]error, workers)
			start := make(chan struct{})
			var wg sync.WaitGroup
			for i := range systems {
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					for r := 0; r < reps; r++ {
						res, err := systems[i].Call("fuzzMain")
						if err != nil {
							errs[i] = fmt.Errorf("rep %d: %w", r, err)
							return
						}
						if r > 0 && res.Value.I() != got[i] {
							errs[i] = fmt.Errorf("rep %d: got %d, rep 0 got %d", r, res.Value.I(), got[i])
							return
						}
						got[i] = res.Value.I()
					}
				}()
			}
			close(start)
			wg.Wait()

			for i := 0; i < workers; i++ {
				if errs[i] != nil {
					t.Fatalf("worker %d: %v\n%s", i, errs[i], src)
				}
				if got[i] != want.Value.I() {
					t.Errorf("worker %d computed %d, oracle computed %d\n%s", i, got[i], want.Value.I(), src)
				}
			}

			st, ok := root.CacheStats()
			if !ok {
				t.Fatal("shared system reports no cache stats")
			}
			if !st.CompileOnce() {
				t.Errorf("compile-once violated: misses=%d entries=%d evicted=%d", st.Misses, st.Entries, st.Evicted)
			}
			if st.Misses == 0 {
				t.Error("cache shows zero compilations; nothing was shared")
			}
		})
	}
}

// TestForkRequiresSharedCache pins the API contract: only systems
// created with NewSharedSystem can fork workers.
func TestForkRequiresSharedCache(t *testing.T) {
	sys, err := NewSystem(NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Fork(); err == nil {
		t.Fatal("Fork on an unshared system should fail")
	}
}

// TestSharedCacheInvalidation checks that redefining a method through
// the world's change hook evicts its customizations from the shared
// cache and that subsequent calls see the new definition.
func TestSharedCacheInvalidation(t *testing.T) {
	root, err := NewSharedSystem(NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.LoadSource("answer = ( 41 )."); err != nil {
		t.Fatal(err)
	}
	res, err := root.Call("answer")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.I() != 41 {
		t.Fatalf("got %d, want 41", res.Value.I())
	}
	st, _ := root.CacheStats()
	if st.Misses == 0 {
		t.Fatal("first call should have compiled through the shared cache")
	}

	// Redefine: the OnMapChange hook must evict the stale code.
	if err := root.LoadSource("answer = ( 42 )."); err != nil {
		t.Fatal(err)
	}
	res, err = root.Call("answer")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.I() != 42 {
		t.Fatalf("after redefinition got %d, want 42 (stale code survived invalidation)", res.Value.I())
	}
	st, _ = root.CacheStats()
	if st.Evicted == 0 {
		t.Error("redefinition did not evict anything from the shared cache")
	}
	if !st.CompileOnce() {
		t.Errorf("compile-once violated after invalidation: misses=%d entries=%d evicted=%d",
			st.Misses, st.Entries, st.Evicted)
	}
}

// TestConcurrentStatsSnapshots hammers the observability surface while
// 8 workers run the adaptive tier schedule: one goroutine per snapshot
// kind (cache stats, promotion stats, tier counts) polls continuously
// during the run, and every snapshot must be internally consistent and
// monotone — counters never go backwards, CompileOnce never reports a
// violation. This is the -race guarantee the serving layer's /metrics
// endpoint depends on: scrapes happen on arbitrary goroutines while
// every worker executes and promotes.
func TestConcurrentStatsSnapshots(t *testing.T) {
	const workers = 8
	const reps = 6
	root, err := NewTieredSystem(NewSELF, ModeAdaptive, 10)
	if err != nil {
		t.Fatal(err)
	}
	src := `
spinStats: n = ( | s <- 0 | 1 upTo: n Do: [ :i | s: s + (i * i) ]. s ).
stepStats: n = ( spinStats: n ).
`
	if err := root.LoadSource(src); err != nil {
		t.Fatal(err)
	}
	systems := make([]*System, workers)
	systems[0] = root
	for i := 1; i < workers; i++ {
		if systems[i], err = root.Fork(); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	snapErr := make(chan error, 3)
	// Cache-stats poller: counters are monotone and compile-once holds
	// in every snapshot, not just the final one.
	go func() {
		var prev CacheStats
		for {
			select {
			case <-stop:
				snapErr <- nil
				return
			default:
			}
			st, ok := root.CacheStats()
			if !ok {
				snapErr <- fmt.Errorf("shared system reported no cache")
				return
			}
			if st.Hits < prev.Hits || st.Misses < prev.Misses ||
				st.Waits < prev.Waits || st.Evicted < prev.Evicted ||
				st.Promotions < prev.Promotions {
				snapErr <- fmt.Errorf("cache counters went backwards: %+v -> %+v", prev, st)
				return
			}
			if !st.CompileOnce() {
				snapErr <- fmt.Errorf("snapshot violates compile-once: %+v", st)
				return
			}
			prev = st
		}
	}()
	// Promotion-stats poller.
	go func() {
		var prev PromotionStats
		for {
			select {
			case <-stop:
				snapErr <- nil
				return
			default:
			}
			ps := root.PromotionStats()
			if ps.Installed < prev.Installed || ps.Fails < prev.Fails || ps.Discards < prev.Discards {
				snapErr <- fmt.Errorf("promotion counters went backwards: %+v -> %+v", prev, ps)
				return
			}
			prev = ps
		}
	}()
	// Tier-count poller: totals only grow.
	go func() {
		prevTotal := 0
		for {
			select {
			case <-stop:
				snapErr <- nil
				return
			default:
			}
			total := 0
			for _, n := range root.TierCounts() {
				total += n
			}
			if total < prevTotal {
				snapErr <- fmt.Errorf("tier-count total shrank: %d -> %d", prevTotal, total)
				return
			}
			prevTotal = total
		}
	}()

	var wg sync.WaitGroup
	for i := range systems {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				res, err := systems[i].Call("stepStats:", IntValue(300))
				if err != nil {
					t.Errorf("worker %d rep %d: %v", i, r, err)
					return
				}
				if res.Value.I() != 8955050 {
					t.Errorf("worker %d rep %d: got %d", i, r, res.Value.I())
					return
				}
			}
		}()
	}
	wg.Wait()
	root.DrainPromotions()
	close(stop)
	for i := 0; i < 3; i++ {
		if err := <-snapErr; err != nil {
			t.Fatal(err)
		}
	}

	// Post-drain: the final snapshot still satisfies compile-once, and
	// the adaptive schedule actually promoted something.
	st, _ := root.CacheStats()
	if !st.CompileOnce() {
		t.Errorf("final snapshot violates compile-once: %+v", st)
	}
	ps := root.PromotionStats()
	if ps.Installed == 0 {
		t.Errorf("no promotions landed under 8-worker adaptive load: %+v (tiers %v)", ps, root.TierCounts())
	}
}
