package selfgo

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSharedCache runs generated programs on 8 goroutines
// that share one world and one code cache, and checks every worker's
// result against a single-threaded oracle system. With -race this is
// the main concurrency test for the shared cache: the first wave of
// calls starts cold and simultaneously, so the workers pile up on the
// single-flight path, and the cache counters must still show each
// customization compiled exactly once.
func TestConcurrentSharedCache(t *testing.T) {
	const workers = 8
	const reps = 3
	seeds := []int64{1, 7, 19, 42, 101}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := newProgGen(seed).generate(4, 2, 12)

			// Single-threaded oracle on a private, unshared system.
			oracle, err := NewSystem(NewSELF)
			if err != nil {
				t.Fatal(err)
			}
			if err := oracle.LoadSource(src); err != nil {
				t.Fatalf("seed %d does not parse: %v\n%s", seed, err, src)
			}
			want, err := oracle.Call("fuzzMain")
			if err != nil {
				t.Fatalf("oracle: %v\n%s", err, src)
			}

			root, err := NewSharedSystem(NewSELF)
			if err != nil {
				t.Fatal(err)
			}
			if err := root.LoadSource(src); err != nil {
				t.Fatal(err)
			}
			systems := make([]*System, workers)
			systems[0] = root
			for i := 1; i < workers; i++ {
				if systems[i], err = root.Fork(); err != nil {
					t.Fatal(err)
				}
			}

			got := make([]int64, workers)
			errs := make([]error, workers)
			start := make(chan struct{})
			var wg sync.WaitGroup
			for i := range systems {
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					for r := 0; r < reps; r++ {
						res, err := systems[i].Call("fuzzMain")
						if err != nil {
							errs[i] = fmt.Errorf("rep %d: %w", r, err)
							return
						}
						if r > 0 && res.Value.I != got[i] {
							errs[i] = fmt.Errorf("rep %d: got %d, rep 0 got %d", r, res.Value.I, got[i])
							return
						}
						got[i] = res.Value.I
					}
				}()
			}
			close(start)
			wg.Wait()

			for i := 0; i < workers; i++ {
				if errs[i] != nil {
					t.Fatalf("worker %d: %v\n%s", i, errs[i], src)
				}
				if got[i] != want.Value.I {
					t.Errorf("worker %d computed %d, oracle computed %d\n%s", i, got[i], want.Value.I, src)
				}
			}

			st, ok := root.CacheStats()
			if !ok {
				t.Fatal("shared system reports no cache stats")
			}
			if !st.CompileOnce() {
				t.Errorf("compile-once violated: misses=%d entries=%d evicted=%d", st.Misses, st.Entries, st.Evicted)
			}
			if st.Misses == 0 {
				t.Error("cache shows zero compilations; nothing was shared")
			}
		})
	}
}

// TestForkRequiresSharedCache pins the API contract: only systems
// created with NewSharedSystem can fork workers.
func TestForkRequiresSharedCache(t *testing.T) {
	sys, err := NewSystem(NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Fork(); err == nil {
		t.Fatal("Fork on an unshared system should fail")
	}
}

// TestSharedCacheInvalidation checks that redefining a method through
// the world's change hook evicts its customizations from the shared
// cache and that subsequent calls see the new definition.
func TestSharedCacheInvalidation(t *testing.T) {
	root, err := NewSharedSystem(NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.LoadSource("answer = ( 41 )."); err != nil {
		t.Fatal(err)
	}
	res, err := root.Call("answer")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.I != 41 {
		t.Fatalf("got %d, want 41", res.Value.I)
	}
	st, _ := root.CacheStats()
	if st.Misses == 0 {
		t.Fatal("first call should have compiled through the shared cache")
	}

	// Redefine: the OnMapChange hook must evict the stale code.
	if err := root.LoadSource("answer = ( 42 )."); err != nil {
		t.Fatal(err)
	}
	res, err = root.Call("answer")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.I != 42 {
		t.Fatalf("after redefinition got %d, want 42 (stale code survived invalidation)", res.Value.I)
	}
	st, _ = root.CacheStats()
	if st.Evicted == 0 {
		t.Error("redefinition did not evict anything from the shared cache")
	}
	if !st.CompileOnce() {
		t.Errorf("compile-once violated after invalidation: misses=%d entries=%d evicted=%d",
			st.Misses, st.Entries, st.Evicted)
	}
}
