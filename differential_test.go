package selfgo

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// progGen generates random well-defined programs in the object
// language: integer arithmetic kept within the small-integer range,
// guarded division, bounded loops, conditionals, vector traffic and
// block calls. Every compiler configuration must compute the same
// value — the optimizations may never change semantics.
type progGen struct {
	r      *rand.Rand
	b      strings.Builder
	vars   []string
	vecs   []string
	depth  int
	indent string
}

func newProgGen(seed int64) *progGen {
	return &progGen{r: rand.New(rand.NewSource(seed))}
}

func (g *progGen) line(format string, args ...any) {
	g.b.WriteString(g.indent)
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteString(".\n")
}

// intExpr produces an integer expression over existing variables,
// masked into a safe range so no overflow failure can occur.
func (g *progGen) intExpr() string {
	pick := func() string {
		if len(g.vars) > 0 && g.r.Intn(3) > 0 {
			return g.vars[g.r.Intn(len(g.vars))]
		}
		return fmt.Sprintf("%d", g.r.Intn(2000)-1000)
	}
	switch g.r.Intn(8) {
	case 0, 1:
		return fmt.Sprintf("(%s + %s) %% 10007", pick(), pick())
	case 2:
		return fmt.Sprintf("(%s - %s) %% 10007", pick(), pick())
	case 3:
		return fmt.Sprintf("((%s %% 100) * (%s %% 100)) %% 10007", pick(), pick())
	case 4:
		return fmt.Sprintf("%s / ((%s %% 7) abs + 1)", pick(), pick())
	case 5:
		return fmt.Sprintf("(%s bitXor: %s) %% 10007", pick(), pick())
	case 6:
		return fmt.Sprintf("(%s min: %s) + (%s max: %s)", pick(), pick(), pick(), pick())
	default:
		return fmt.Sprintf("%s abs %% 4999", pick())
	}
}

func (g *progGen) boolExpr() string {
	ops := []string{"<", "<=", ">", ">=", "=", "!="}
	return fmt.Sprintf("(%s) %s (%s)", g.intExpr(), ops[g.r.Intn(len(ops))], g.intExpr())
}

func (g *progGen) stmt() {
	if g.depth > 3 {
		g.assign()
		return
	}
	switch g.r.Intn(10) {
	case 0, 1, 2, 3:
		g.assign()
	case 4, 5:
		g.ifStmt()
	case 6:
		g.loopStmt()
	case 7:
		g.vecStmt()
	case 8:
		g.blockStmt()
	default:
		g.assign()
	}
}

func (g *progGen) assign() {
	v := g.vars[g.r.Intn(len(g.vars))]
	g.line("%s: (%s)", v, g.intExpr())
}

func (g *progGen) ifStmt() {
	g.depth++
	v := g.vars[g.r.Intn(len(g.vars))]
	if g.r.Intn(2) == 0 {
		g.line("(%s) ifTrue: [ %s: (%s) ] False: [ %s: (%s) ]",
			g.boolExpr(), v, g.intExpr(), v, g.intExpr())
	} else {
		g.line("(%s) ifTrue: [ %s: (%s) ]", g.boolExpr(), v, g.intExpr())
	}
	g.depth--
}

func (g *progGen) loopStmt() {
	g.depth++
	v := g.vars[g.r.Intn(len(g.vars))]
	n := g.r.Intn(8) + 1
	switch g.r.Intn(3) {
	case 0:
		g.line("0 upTo: %d Do: [ :lv%d | %s: (%s + lv%d) %% 10007 ]", n, g.depth, v, v, g.depth)
	case 1:
		g.line("%d timesRepeat: [ %s: (%s) ]", n, v, g.intExpr())
	default:
		g.line("%d downTo: 1 Do: [ :lv%d | %s: (%s - lv%d) %% 10007 ]", n, g.depth, v, v, g.depth)
	}
	g.depth--
}

func (g *progGen) vecStmt() {
	if len(g.vecs) == 0 {
		return
	}
	vec := g.vecs[g.r.Intn(len(g.vecs))]
	v := g.vars[g.r.Intn(len(g.vars))]
	idx := fmt.Sprintf("(%s) abs %% (%s size)", g.intExpr(), vec)
	if g.r.Intn(2) == 0 {
		g.line("%s at: (%s) Put: (%s)", vec, idx, g.intExpr())
	} else {
		g.line("%s: ((%s at: (%s)) + %s) %% 10007", v, vec, idx, v)
	}
}

func (g *progGen) blockStmt() {
	v := g.vars[g.r.Intn(len(g.vars))]
	g.line("%s: ([ :bp | (bp + %s) %% 10007 ] value: (%s))", v, v, g.intExpr())
}

// generate builds a complete program with nVars locals and nStmts
// statements, returning a checksum of every variable and vector.
func (g *progGen) generate(nVars, nVecs, nStmts int) string {
	g.b.WriteString("fuzzMain = ( | ")
	for i := 0; i < nVars; i++ {
		name := fmt.Sprintf("v%d", i)
		g.vars = append(g.vars, name)
		fmt.Fprintf(&g.b, "%s <- %d. ", name, g.r.Intn(200)-100)
	}
	for i := 0; i < nVecs; i++ {
		name := fmt.Sprintf("vec%d", i)
		g.vecs = append(g.vecs, name)
		fmt.Fprintf(&g.b, "%s. ", name)
	}
	g.b.WriteString("chk <- 0 |\n")
	g.indent = "    "
	for i, vec := range g.vecs {
		g.line("%s: vector copySize: %d FillWith: %d", vec, g.r.Intn(6)+2, i)
	}
	for i := 0; i < nStmts; i++ {
		g.stmt()
	}
	for _, v := range g.vars {
		g.line("chk: ((chk * 31) + %s) %% 999983", v)
	}
	for _, vec := range g.vecs {
		g.line("%s do: [ :e | chk: ((chk * 31) + e) %% 999983 ]", vec)
	}
	g.b.WriteString("    chk ).\n")
	return g.b.String()
}

// TestDifferentialRandomPrograms cross-checks all six compiler
// configurations on generated programs: any disagreement is a
// miscompilation in one of them.
func TestDifferentialRandomPrograms(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	for seed := int64(0); seed < int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g := newProgGen(seed)
			src := g.generate(4, 2, 12)
			var ref int64
			var refCfg string
			for i, cfg := range Configs() {
				sys, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.LoadSource(src); err != nil {
					t.Fatalf("seed %d does not parse: %v\n%s", seed, err, src)
				}
				res, err := sys.Call("fuzzMain")
				if err != nil {
					t.Fatalf("[%s] seed %d: %v\n%s", cfg.Name, seed, err, src)
				}
				if i == 0 {
					ref, refCfg = res.Value.I(), cfg.Name
				} else if res.Value.I() != ref {
					t.Errorf("seed %d: %s computed %d but %s computed %d\n%s",
						seed, cfg.Name, res.Value.I(), refCfg, ref, src)
				}
			}
		})
	}
}

// TestDifferentialWithFacts also crosses the §7 comparison-facts
// extension against the baseline on vector-heavy programs.
func TestDifferentialWithFacts(t *testing.T) {
	n := 20
	if testing.Short() {
		n = 5
	}
	facts := NewSELF
	facts.Name = "new SELF + facts"
	facts.ComparisonFacts = true
	for seed := int64(100); seed < int64(100+n); seed++ {
		g := newProgGen(seed)
		src := g.generate(3, 3, 10)
		var ref int64
		for i, cfg := range []Config{NewSELF, facts, NewSELFExtended} {
			sys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.LoadSource(src); err != nil {
				t.Fatal(err)
			}
			res, err := sys.Call("fuzzMain")
			if err != nil {
				t.Fatalf("[%s] seed %d: %v\n%s", cfg.Name, seed, err, src)
			}
			if i == 0 {
				ref = res.Value.I()
			} else if res.Value.I() != ref {
				t.Errorf("seed %d: %s computed %d, want %d\n%s", seed, cfg.Name, res.Value.I(), ref, src)
			}
		}
	}
}
