package selfgo

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"selfgo/internal/obj"
)

// saveRestore snapshots sys (with the given interned eval programs)
// and boots a fresh system from the bytes, failing the test on any
// error. The restored system uses the same config and tier mode.
func saveRestore(t *testing.T, sys *System, progs []*EvalProgram, mode TierMode) *Boot {
	t.Helper()
	var buf bytes.Buffer
	info, err := sys.SaveImage(&buf, progs)
	if err != nil {
		t.Fatalf("SaveImage: %v", err)
	}
	if info.Bytes != buf.Len() {
		t.Fatalf("ImageInfo.Bytes = %d, wrote %d", info.Bytes, buf.Len())
	}
	boot, err := BootFromImage(&buf, sys.Cfg, mode, sys.promoteThreshold)
	if err != nil {
		t.Fatalf("BootFromImage: %v", err)
	}
	if boot.Hash != info.Hash {
		t.Fatalf("restored hash %s != saved hash %s", boot.Hash, info.Hash)
	}
	return boot
}

// TestImageRoundTripConformance is the round-trip oracle: a system
// saved cold and restored must run every conformance program with
// bit-identical results and RunStats to the system it was saved from,
// and force the same number of compiles.
func TestImageRoundTripConformance(t *testing.T) {
	for _, p := range conformancePrograms {
		p := p
		t.Run(p.name, func(t *testing.T) {
			fresh, err := NewTieredSystem(NewSELF, ModeOpt, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.LoadSource(p.src); err != nil {
				t.Fatal(err)
			}
			boot := saveRestore(t, fresh, nil, ModeOpt)

			want, err := fresh.Call(p.sel, p.args...)
			if err != nil {
				t.Fatalf("fresh run: %v", err)
			}
			got, err := boot.Sys.Call(p.sel, p.args...)
			if err != nil {
				t.Fatalf("restored run: %v", err)
			}
			if !got.Value.Eq(want.Value) {
				t.Fatalf("restored value %v != fresh value %v", got.Value, want.Value)
			}
			if !reflect.DeepEqual(got.Run, want.Run) {
				t.Fatalf("RunStats diverged:\nfresh    %+v\nrestored %+v", want.Run, got.Run)
			}
			fs, _ := fresh.CacheStats()
			rs, _ := boot.Sys.CacheStats()
			if fs.Misses != rs.Misses || fs.Evicted != rs.Evicted {
				t.Fatalf("compile counters diverged: fresh misses=%d evicted=%d, restored misses=%d evicted=%d",
					fs.Misses, fs.Evicted, rs.Misses, rs.Evicted)
			}
		})
	}
}

// warmSrc is a small program with enough structure to promote: a
// mutable accumulator object and a block-heavy loop.
const warmSrc = `
acc = (| parent* = lobby. total <- 0.
    add: n = ( total: total + n. self ).
    reset = ( total: 0. self ) |).
churn: n = ( | a |
    a: acc _Clone reset.
    1 upTo: n Do: [ :i | a add: i * 2 ].
    a total ).`

// TestImageWarmDifferential proves warm restore changes nothing
// observable: two identically-warmed systems, one of which goes
// through save/restore/prepromote, answer the same workload with
// bit-identical values and RunStats — and the restored one answers it
// entirely from pre-promoted code (zero cache misses).
func TestImageWarmDifferential(t *testing.T) {
	mkWarm := func() *System {
		t.Helper()
		sys, err := NewTieredSystem(NewSELF, ModeOpt, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.LoadSource(warmSrc); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Call("churn:", IntValue(50)); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	ref := mkWarm()
	saved := mkWarm()
	boot := saveRestore(t, saved, nil, ModeOpt)
	if boot.ManifestLen() == 0 {
		t.Fatal("warmed system saved an empty code manifest")
	}
	compiled, failed := boot.Prepromote(4)
	if failed != 0 {
		t.Fatalf("%d manifest entries failed to pre-promote", failed)
	}
	if compiled != boot.ManifestLen() {
		t.Fatalf("pre-promoted %d of %d manifest entries", compiled, boot.ManifestLen())
	}

	before, _ := boot.Sys.CacheStats()
	want, err := ref.Call("churn:", IntValue(50))
	if err != nil {
		t.Fatal(err)
	}
	got, err := boot.Sys.Call("churn:", IntValue(50))
	if err != nil {
		t.Fatal(err)
	}
	after, _ := boot.Sys.CacheStats()
	if got.Value.I() != want.Value.I() {
		t.Fatalf("restored value %d != reference %d", got.Value.I(), want.Value.I())
	}
	if !reflect.DeepEqual(got.Run, want.Run) {
		t.Fatalf("RunStats diverged:\nreference %+v\nrestored  %+v", want.Run, got.Run)
	}
	if after.Misses != before.Misses {
		t.Fatalf("restored system recompiled under traffic: %d new misses after pre-promotion",
			after.Misses-before.Misses)
	}
}

// TestImageManifestRestoresTiers checks the manifest round-trips tier
// and hotness: an adaptively-promoted method comes back at its
// promoted tier without re-earning the promotion.
func TestImageManifestRestoresTiers(t *testing.T) {
	sys, err := NewTieredSystem(NewSELF, ModeAdaptive, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSource(warmSrc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := sys.Call("churn:", IntValue(20)); err != nil {
			t.Fatal(err)
		}
	}
	sys.DrainPromotions()
	if n := sys.TierCounts()["optimizing"]; n == 0 {
		t.Fatal("warmup never promoted anything; test needs a hot method")
	}

	boot := saveRestore(t, sys, nil, ModeAdaptive)
	if compiled, failed := boot.Prepromote(2); compiled == 0 || failed != 0 {
		t.Fatalf("Prepromote: compiled=%d failed=%d", compiled, failed)
	}
	// The restored system has run nothing, yet its compile log already
	// shows optimizing-tier compiles: the manifest carried the tier.
	if n := boot.Sys.TierCounts()["optimizing"]; n == 0 {
		t.Fatal("pre-promotion compiled nothing at the optimizing tier")
	}
	// And the seeded hotness keeps it there: more traffic must not
	// re-trigger promotions for the already-promoted keys.
	before, _ := boot.Sys.CacheStats()
	for i := 0; i < 30; i++ {
		if _, err := boot.Sys.Call("churn:", IntValue(20)); err != nil {
			t.Fatal(err)
		}
	}
	boot.Sys.DrainPromotions()
	after, _ := boot.Sys.CacheStats()
	if after.Misses != before.Misses {
		t.Fatalf("restored hot code was recompiled: %d new misses", after.Misses-before.Misses)
	}
}

// TestImageReclassificationOracle: mutating a map after restore must
// invalidate restored compiled code exactly like it does on a world
// that was never snapshotted — same values, same RunStats, same
// compile and eviction counters.
func TestImageReclassificationOracle(t *testing.T) {
	const v1 = `
	shape = (| parent* = lobby. n <- 7.
	    cost = ( n * 2 ) |).
	tally = ( | s <- 0 |
	    1 to: 10 Do: [ :i | s: s + shape cost ].
	    s ).`
	// v2 rebinds shape: the lobby map changes shape, so every
	// customization compiled against it must be invalidated.
	const v2 = `shape = (| parent* = lobby. n <- 7. cost = ( n * 3 ) |).`

	runSeq := func(sys *System) (int64, int64, RunStats, RunStats) {
		t.Helper()
		r1, err := sys.Call("tally")
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.LoadSource(v2); err != nil {
			t.Fatal(err)
		}
		r2, err := sys.Call("tally")
		if err != nil {
			t.Fatal(err)
		}
		return r1.Value.I(), r2.Value.I(), r1.Run, r2.Run
	}

	straight, err := NewTieredSystem(NewSELF, ModeOpt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := straight.LoadSource(v1); err != nil {
		t.Fatal(err)
	}
	sv1, sv2, sr1, sr2 := runSeq(straight)
	if sv1 != 140 || sv2 != 210 {
		t.Fatalf("straight-through values %d/%d, want 140/210", sv1, sv2)
	}

	snapped, err := NewTieredSystem(NewSELF, ModeOpt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := snapped.LoadSource(v1); err != nil {
		t.Fatal(err)
	}
	boot := saveRestore(t, snapped, nil, ModeOpt)
	rv1, rv2, rr1, rr2 := runSeq(boot.Sys)

	if rv1 != sv1 || rv2 != sv2 {
		t.Fatalf("restored values %d/%d != straight-through %d/%d", rv1, rv2, sv1, sv2)
	}
	if !reflect.DeepEqual(rr1, sr1) || !reflect.DeepEqual(rr2, sr2) {
		t.Fatalf("RunStats diverged across snapshot boundary:\nstraight %+v / %+v\nrestored %+v / %+v",
			sr1, sr2, rr1, rr2)
	}
	ss, _ := straight.CacheStats()
	rs, _ := boot.Sys.CacheStats()
	if ss.Misses != rs.Misses || ss.Evicted != rs.Evicted {
		t.Fatalf("compile counters diverged: straight misses=%d evicted=%d, restored misses=%d evicted=%d",
			ss.Misses, ss.Evicted, rs.Misses, rs.Evicted)
	}
	if rs.Evicted == 0 {
		t.Fatal("redefinition evicted nothing on the restored world; invalidation hook not wired")
	}
}

// TestImageEvalProgramsRoundTrip: interned eval programs ride the
// image and come back runnable with identical results.
func TestImageEvalPrograms(t *testing.T) {
	sys, err := NewTieredSystem(NewSELF, ModeOpt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSource(warmSrc); err != nil {
		t.Fatal(err)
	}
	p, err := sys.ParseEval("| a | a: acc _Clone reset. 1 upTo: 9 Do: [ :i | a add: i ]. a total")
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.EvalProgramCtx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}

	boot := saveRestore(t, sys, []*EvalProgram{p}, ModeOpt)
	if len(boot.Programs) != 1 {
		t.Fatalf("restored %d eval programs, want 1", len(boot.Programs))
	}
	if boot.Programs[0].Source != p.Source {
		t.Fatalf("restored program source %q != %q", boot.Programs[0].Source, p.Source)
	}
	got, err := boot.Sys.EvalProgramCtx(context.Background(), boot.Programs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Value.I() != want.Value.I() {
		t.Fatalf("restored eval result %d != %d", got.Value.I(), want.Value.I())
	}
	if !reflect.DeepEqual(got.Run, want.Run) {
		t.Fatalf("eval RunStats diverged:\nfresh    %+v\nrestored %+v", want.Run, got.Run)
	}
}

// TestImageInternGenerationEq is the intern-bound regression: strings
// serialized by content must restore to values Eq-equal to the
// original AND to freshly-interned strings, even when the intern
// generation that held the original pointers has been dropped between
// save and restore.
func TestImageInternGenerationEq(t *testing.T) {
	const probe = "image-gen-probe"
	sys, err := NewTieredSystem(NewSELF, ModeOpt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSource("tag = (| parent* = lobby. label = '" + probe + "' |). getTag = ( tag )."); err != nil {
		t.Fatal(err)
	}
	want, err := sys.Call("getTag")
	if err != nil {
		t.Fatal(err)
	}
	label := obj.Lookup(want.Value.Obj().Map, "label")
	if label == nil {
		t.Fatal("tag object lost its label slot")
	}
	original := label.Slot.Value

	var buf bytes.Buffer
	if _, err := sys.SaveImage(&buf, nil); err != nil {
		t.Fatal(err)
	}

	// Drop the intern generation that holds probe's canonical pointer:
	// churn well past one generation's capacity.
	for i := 0; i < (1<<16)+64; i++ {
		obj.Str("image-churn-" + strings.Repeat("x", 1+i%7) + string(rune('a'+i%26)) + itoa(i))
	}

	boot, err := BootFromImage(&buf, sys.Cfg, ModeOpt, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := boot.Sys.Call("getTag")
	if err != nil {
		t.Fatal(err)
	}
	rl := obj.Lookup(got.Value.Obj().Map, "label")
	if rl == nil {
		t.Fatal("restored tag object lost its label slot")
	}
	restored := rl.Slot.Value
	if restored.S() != probe {
		t.Fatalf("restored label %q, want %q", restored.S(), probe)
	}
	if !restored.Eq(original) {
		t.Fatal("restored string not Eq to its pre-snapshot value across an intern-generation drop")
	}
	if !restored.Eq(obj.Str(probe)) {
		t.Fatal("restored string not Eq to a freshly interned copy of the same content")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestImageRefusesDirtyWorld: a world whose source log is poisoned by
// a half-applied load must refuse to save.
func TestImageRefusesDirtyWorld(t *testing.T) {
	sys, err := NewTieredSystem(NewSELF, ModeOpt, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys.sources.markDirty()
	if _, err := sys.SaveImage(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("SaveImage succeeded on a dirty source log")
	}
}

// TestForkCOW covers the copy-on-write warm-start path: forks over a
// frozen base see isolated mutable state, identity survives, and the
// frozen base refuses further loads.
func TestForkCOW(t *testing.T) {
	sys, err := NewTieredSystem(NewSELF, ModeOpt, 0)
	if err != nil {
		t.Fatal(err)
	}
	const src = `
	counter = (| parent* = lobby. n <- 0.
	    bump = ( n: n + 1. n ).
	    read = ( n ) |).
	bumpIt = ( counter bump ).
	readIt = ( counter read ).
	whichCounter = ( counter ).`
	if err := sys.LoadSource(src); err != nil {
		t.Fatal(err)
	}

	f1, err := sys.ForkCOW()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := sys.ForkCOW()
	if err != nil {
		t.Fatal(err)
	}

	// The base is frozen now: further loads must be refused, and the
	// refusal must NOT poison the source log (nothing was installed).
	if err := sys.LoadSource(`late = ( 1 ).`); err == nil {
		t.Fatal("frozen world accepted a source load")
	}

	// Writes on f1 shadow privately; f2 and the base stay at 0.
	for i := 0; i < 3; i++ {
		if _, err := f1.Call("bumpIt"); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := f1.Call("readIt")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f2.Call("readIt")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value.I() != 3 {
		t.Fatalf("fork1 sees n=%d, want 3", r1.Value.I())
	}
	if r2.Value.I() != 0 {
		t.Fatalf("fork2 sees fork1's writes: n=%d, want 0", r2.Value.I())
	}
	if f1.COWShadowCount() == 0 {
		t.Fatal("fork1 mutated base state without shadowing anything")
	}
	if f2.COWShadowCount() != 0 {
		t.Fatalf("fork2 shadowed %d objects without writing", f2.COWShadowCount())
	}

	// Identity is preserved: the counter object f1 and f2 name is the
	// same object (shadows are storage, never new identities).
	o1, err := f1.Call("whichCounter")
	if err != nil {
		t.Fatal(err)
	}
	o2, err := f2.Call("whichCounter")
	if err != nil {
		t.Fatal(err)
	}
	if o1.Value.Obj() != o2.Value.Obj() {
		t.Fatal("COW forks disagree on object identity")
	}
}

// TestBootFromImageRejectsGarbage: hostile bytes error cleanly.
func TestBootFromImageRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("not an image"),
		[]byte("SELFIMG1"),
		append([]byte("SELFIMG1"), make([]byte, 32)...),
	} {
		if _, err := BootFromImage(bytes.NewReader(data), NewSELF, ModeOpt, 0); err == nil {
			t.Fatalf("BootFromImage accepted %d garbage bytes", len(data))
		}
	}
}
