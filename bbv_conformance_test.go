package selfgo

import "testing"

// strategyVariants derives the three head-to-head configurations from
// the paper's new compiler: the eager system as measured (split), lazy
// basic-block versioning replacing the eager analyses (bbv), and
// versioning layered on top of the full eager repertoire (both).
func strategyVariants() []Config {
	split := NewSELF
	split.Name = "new SELF (split)"
	bbv := NewSELF
	bbv.Name = "new SELF (bbv)"
	bbv.Strategy = StrategyBBV
	both := NewSELF
	both.Name = "new SELF (both)"
	both.Strategy = StrategyBoth
	return []Config{split, bbv, both}
}

// TestBBVConformanceAcrossStrategies runs every conformance program
// under split, bbv and both: all three strategies must compute
// bit-identical values. Modelled cycles legitimately differ (versioning
// charges different instruction streams) so they are asserted recorded,
// never equal.
func TestBBVConformanceAcrossStrategies(t *testing.T) {
	for _, p := range conformancePrograms {
		p := p
		t.Run(p.name, func(t *testing.T) {
			var ref int64
			var refSet bool
			for _, cfg := range strategyVariants() {
				sys := newSys(t, cfg, p.src)
				res, err := sys.Call(p.sel, p.args...)
				if err != nil {
					t.Fatalf("[%s] Call(%s): %v", cfg.Name, p.sel, err)
				}
				got := res.Value.I()
				if !refSet {
					ref, refSet = got, true
					if p.want != 0 && got != p.want {
						t.Errorf("[%s] got %d, want %d", cfg.Name, got, p.want)
					}
				} else if got != ref {
					t.Errorf("[%s] got %d, split got %d", cfg.Name, got, ref)
				}
				if res.Run.Cycles <= 0 {
					t.Errorf("[%s] no cycles recorded", cfg.Name)
				}
				switch cfg.Strategy {
				case StrategySplit:
					if res.Run.BBVVersions != 0 || res.Run.BBVElidedCtx != 0 || res.Run.BBVElidedShape != 0 {
						t.Errorf("[%s] split must not version: %+v", cfg.Name, res.Run)
					}
				default:
					if res.Run.BBVVersions <= 0 {
						t.Errorf("[%s] no versions materialized", cfg.Name)
					}
					if res.Run.BBVVersionBytes <= 0 {
						t.Errorf("[%s] no modelled version bytes recorded", cfg.Name)
					}
				}
			}
		})
	}
}
