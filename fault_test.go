package selfgo_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"selfgo"
)

// TestBudgetOutOfFuel: an infinite loop under an instruction budget
// terminates with KindOutOfFuel instead of hanging the host.
func TestBudgetOutOfFuel(t *testing.T) {
	sys, err := selfgo.NewSystem(selfgo.NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSource(`spin = ( [ true ] whileTrue: [ ]. 0 ).`); err != nil {
		t.Fatal(err)
	}
	sys.SetBudget(selfgo.Budget{MaxInstrs: 1_000_000})
	done := make(chan error, 1)
	go func() {
		_, err := sys.Call("spin")
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("budgeted infinite loop did not terminate")
	}
	if err == nil {
		t.Fatal("infinite loop returned no error")
	}
	if k, ok := selfgo.ErrorKind(err); !ok || k != selfgo.KindOutOfFuel {
		t.Fatalf("kind = %v (ok=%v), want KindOutOfFuel; err: %v", k, ok, err)
	}

	// The same system with the budget cleared still runs fine.
	sys.SetBudget(selfgo.Budget{})
	res, err := sys.Eval(`3 + 4`)
	if err != nil || res.Value.I() != 7 {
		t.Fatalf("post-fuel-exhaustion eval = (%v, %v), want 7", res, err)
	}
}

// TestBudgetMaxAllocs: a loop that allocates every iteration exhausts
// an allocation budget.
func TestBudgetMaxAllocs(t *testing.T) {
	sys, err := selfgo.NewSystem(selfgo.NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSource(`churn = ( [ true ] whileTrue: [ _NewVec: 8 ]. 0 ).`); err != nil {
		t.Fatal(err)
	}
	sys.SetBudget(selfgo.Budget{MaxAllocs: 10_000})
	_, err = sys.Call("churn")
	if k, ok := selfgo.ErrorKind(err); !ok || k != selfgo.KindOutOfFuel {
		t.Fatalf("kind = %v (ok=%v), want KindOutOfFuel; err: %v", k, ok, err)
	}
}

// TestContextCancelled: cancelling the context aborts a long run
// promptly with KindCancelled.
func TestContextCancelled(t *testing.T) {
	sys, err := selfgo.NewSystem(selfgo.NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	// upTo:Do: excludes the upper bound; the bound only needs to be big
	// enough that the loop runs for seconds if never cancelled.
	if err := sys.LoadSource(`long = ( |s <- 0| 1 upTo: 500000000 Do: [ :i | s: s + 1 ]. s ).`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err = sys.CallCtx(ctx, "long")
	elapsed := time.Since(t0)
	if k, ok := selfgo.ErrorKind(err); !ok || k != selfgo.KindCancelled {
		t.Fatalf("kind = %v (ok=%v), want KindCancelled; err: %v", k, ok, err)
	}
	// "Promptly": polling every 1024 instructions, abort should land
	// well under the multi-second runtime of the full loop.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestBudgetMaxDepth: a tighter-than-VM depth budget converts deep
// recursion into KindStackOverflow sooner.
func TestBudgetMaxDepth(t *testing.T) {
	sys, err := selfgo.NewSystem(selfgo.ST80)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSource(`down: n = ( (n = 0) ifTrue: [ 0 ] False: [ down: n - 1 ] ).`); err != nil {
		t.Fatal(err)
	}
	sys.SetBudget(selfgo.Budget{MaxDepth: 50})
	_, err = sys.Call("down:", selfgo.IntValue(100000))
	if k, ok := selfgo.ErrorKind(err); !ok || k != selfgo.KindStackOverflow {
		t.Fatalf("kind = %v (ok=%v), want KindStackOverflow; err: %v", k, ok, err)
	}
	// Within budget, the same call succeeds.
	res, err := sys.Call("down:", selfgo.IntValue(10))
	if err != nil || res.Value.I() != 0 {
		t.Fatalf("down: 10 = (%v, %v), want 0", res, err)
	}
}

// TestErrorKindDNU: a doesNotUnderstand classifies as
// KindDoesNotUnderstand and carries a Self-level backtrace through the
// calling frames.
func TestErrorKindDNU(t *testing.T) {
	// ST80 keeps user sends out-of-line, so the failing send sits under
	// real activation frames and the trace has depth.
	sys, err := selfgo.NewSystem(selfgo.ST80)
	if err != nil {
		t.Fatal(err)
	}
	src := `
outer = ( middle ).
middle = ( inner ).
inner = ( 3 zorkify ).
`
	if err := sys.LoadSource(src); err != nil {
		t.Fatal(err)
	}
	_, err = sys.Call("outer")
	if k, ok := selfgo.ErrorKind(err); !ok || k != selfgo.KindDoesNotUnderstand {
		t.Fatalf("kind = %v (ok=%v), want KindDoesNotUnderstand; err: %v", k, ok, err)
	}
	var re *selfgo.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not a RuntimeError", err)
	}
	if len(re.Trace) < 3 {
		t.Fatalf("trace has %d frames, want >= 3: %q", len(re.Trace), re.Backtrace())
	}
	bt := re.Backtrace()
	for _, name := range []string{"inner", "middle", "outer"} {
		if !strings.Contains(bt, name) {
			t.Fatalf("backtrace missing frame %q:\n%s", name, bt)
		}
	}
}

// TestPollStrideZeroModelledCost: the cooperative poll charges no
// modelled cycles whatever its stride — even polling after every
// single instruction must leave the full RunStats bit-identical to an
// unbudgeted run (the §6.1 cost model does not know the poll exists).
func TestPollStrideZeroModelledCost(t *testing.T) {
	src := `work: n = ( | s <- 0 | 1 upTo: n Do: [ :i | s: s + (i * i) ]. s ).`
	run := func(b selfgo.Budget) selfgo.RunStats {
		sys, err := selfgo.NewSystem(selfgo.NewSELF)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.LoadSource(src); err != nil {
			t.Fatal(err)
		}
		sys.SetBudget(b)
		res, err := sys.Call("work:", selfgo.IntValue(500))
		if err != nil {
			t.Fatalf("budget %+v: %v", b, err)
		}
		if res.Value.I() != 41541750 {
			t.Fatalf("budget %+v: value = %d", b, res.Value.I())
		}
		return res.Run
	}
	base := run(selfgo.Budget{})
	for _, b := range []selfgo.Budget{
		{PollEvery: 1},
		{PollEvery: 1, MaxInstrs: 1 << 40, MaxAllocs: 1 << 40},
		{PollEvery: 7, MaxInstrs: 1 << 40},
		{MaxInstrs: 1 << 40}, // default stride, for contrast
	} {
		if got := run(b); got != base {
			t.Errorf("RunStats drift under budget %+v:\n got %+v\nwant %+v", b, got, base)
		}
	}
}

// TestPollStrideTightensCancellation: a 1-instruction stride notices a
// pre-cancelled context essentially immediately, where the default
// stride runs up to 1024 instructions first.
func TestPollStrideTightensCancellation(t *testing.T) {
	sys, err := selfgo.NewSystem(selfgo.NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSource(`spin = ( [ true ] whileTrue: [ ]. 0 ).`); err != nil {
		t.Fatal(err)
	}
	sys.SetBudget(selfgo.Budget{PollEvery: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sys.CallCtx(ctx, "spin")
	if k, ok := selfgo.ErrorKind(err); !ok || k != selfgo.KindCancelled {
		t.Fatalf("kind = %v (ok=%v), want KindCancelled; err: %v", k, ok, err)
	}
}
