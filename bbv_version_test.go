package selfgo_test

import (
	"testing"

	"selfgo"
)

// bbvMegamorphic drives one merge-heavy method: three independent
// predicted comparisons inside a loop body produce up to eight distinct
// fact combinations at the trailing merge points, far more contexts
// than a small version cap admits.
const bbvMegamorphic = `
go: n = ( | s <- 0 |
    1 to: n Do: [ :i |
        | a. b. c |
        a: i % 2. b: i % 3. c: i % 5.
        (a = 0) ifTrue: [ s: s + 1 ].
        (b = 0) ifTrue: [ s: s + 2 ].
        (c = 0) ifTrue: [ s: s + 3 ].
        s: s + i ].
    s ).`

// TestBBVVersionCapBound: a megamorphic program plateaus at maxvers
// specialized versions per block, with the overflow served by the
// generic fallback — so the version store (host memory) is bounded no
// matter how many contexts flow through. All counter-asserted: cap
// hits observed, per-block tables never exceed the cap, and a second
// run materializes nothing new.
func TestBBVVersionCapBound(t *testing.T) {
	const maxVers = 2
	cfg := bbvStrategyConfig(selfgo.StrategyBBV)
	cfg.MaxVers = maxVers

	// The split strategy pins the expected value.
	ref, err := selfgo.NewSystem(bbvStrategyConfig(selfgo.StrategySplit))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.LoadSource(bbvMegamorphic); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Call("go:", selfgo.IntValue(300))
	if err != nil {
		t.Fatal(err)
	}

	sys, err := selfgo.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSource(bbvMegamorphic); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Call("go:", selfgo.IntValue(300))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.I() != want.Value.I() {
		t.Fatalf("capped bbv computed %d, split computed %d", res.Value.I(), want.Value.I())
	}
	if res.Run.BBVCapHits <= 0 {
		t.Fatal("no cap hits recorded: the program is not megamorphic enough to test the bound")
	}
	if res.Run.BBVVersions <= 0 {
		t.Fatal("no versions materialized")
	}

	code, err := sys.CodeFor("go:")
	if err != nil {
		t.Fatal(err)
	}
	st := code.BBVState()
	if st == nil {
		t.Fatal("bbv strategy compiled code without a version store")
	}
	if st.MaxVers() != maxVers {
		t.Fatalf("MaxVers = %d, want the configured %d", st.MaxVers(), maxVers)
	}
	// The bound itself: no block's specialized table ever exceeds the
	// cap, however many contexts arrived.
	if max := st.PerBlockMax(); max > maxVers {
		t.Fatalf("a block holds %d specialized versions, cap is %d", max, maxVers)
	}
	versBefore, capsBefore := st.Counts()
	if capsBefore != res.Run.BBVCapHits {
		t.Fatalf("store counted %d cap hits, run recorded %d", capsBefore, res.Run.BBVCapHits)
	}

	// Plateau: the same workload again materializes zero new versions —
	// every context is either memoized or capped onto the existing
	// generic fallback, so host memory stops growing.
	res2, err := sys.Call("go:", selfgo.IntValue(300))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Value.I() != want.Value.I() {
		t.Fatalf("second run computed %d, want %d", res2.Value.I(), want.Value.I())
	}
	versAfter, _ := st.Counts()
	if versAfter != versBefore {
		t.Fatalf("second run grew the version store: %d -> %d versions", versBefore, versAfter)
	}
	if res2.Run.BBVVersions != 0 {
		t.Fatalf("second run recorded %d fresh versions, want 0 (plateau)", res2.Run.BBVVersions)
	}
	if max := st.PerBlockMax(); max > maxVers {
		t.Fatalf("after the second run a block holds %d versions, cap is %d", max, maxVers)
	}
}

// bbvShapeProgram: bump is reached through polymorphic dispatch, so it
// compiles out-of-line as a customization of point's map and lands in
// the shared code cache — the same dependency shape as the slot
// reclassification oracle (TestSharedCacheInvalidation). Its x + 1
// specializes on point's typed shape tag for x.
const bbvShapeProgram = `
point = (| parent* = lobby. x <- 1.
    bump = ( x + 1 ).
    setX: v = ( x: v ) |).
other = (| parent* = lobby. bump = ( 7 ) |).
pick: i = ( ((i % 2) = 0) ifTrue: [ ^ point ]. other ).
drive: n = ( | s <- 0 | 1 to: n Do: [ :i | s: s + (pick: i) bump ]. s ).`

// TestBBVShapeInvalidation: storing a value of a new type into a slot
// BBV shape-specialized against must invalidate through the ordinary
// OnMapChange path — the widening evicts point's customizations from
// the shared cache and the next run recompiles them, exactly the
// misses/evictions accounting the reclassification oracle pins. After
// the widening the program still computes the identical value; the
// shape elisions are gone for good (a widened tag never narrows).
func TestBBVShapeInvalidation(t *testing.T) {
	sys, err := selfgo.NewTieredSystem(bbvStrategyConfig(selfgo.StrategyBBV), selfgo.ModeOpt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSource(bbvShapeProgram); err != nil {
		t.Fatal(err)
	}
	res1, err := sys.Call("drive:", selfgo.IntValue(50))
	if err != nil {
		t.Fatal(err)
	}
	// 25 polymorphic laps each way: 25*(1+1) + 25*7.
	if res1.Value.I() != 225 {
		t.Fatalf("drive: 50 = %d, want 225", res1.Value.I())
	}
	if res1.Run.BBVElidedShape <= 0 {
		t.Fatal("no shape-derived elisions recorded: the test is not exercising typed shapes")
	}
	before, _ := sys.CacheStats()

	// The widening store: x held smallInt everywhere, now a string.
	if _, err := sys.Eval("point setX: 'str'"); err != nil {
		t.Fatal(err)
	}
	mid, _ := sys.CacheStats()
	if mid.Evicted <= before.Evicted {
		t.Fatalf("widening evicted nothing: evicted %d -> %d", before.Evicted, mid.Evicted)
	}

	// Restore an integer and re-run: the value is untouched, the evicted
	// customizations recompile (misses grow), and no shape elision ever
	// fires again — PolyShape is permanent.
	if _, err := sys.Eval("point setX: 1"); err != nil {
		t.Fatal(err)
	}
	res2, err := sys.Call("drive:", selfgo.IntValue(50))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Value.I() != 225 {
		t.Fatalf("post-widening drive: 50 = %d, want 225", res2.Value.I())
	}
	if res2.Run.BBVElidedShape != 0 {
		t.Fatalf("post-widening run still elided %d shape tests; the tag must stay polymorphic", res2.Run.BBVElidedShape)
	}
	after, _ := sys.CacheStats()
	if after.Misses <= mid.Misses {
		t.Fatalf("post-widening run recompiled nothing: misses %d -> %d", mid.Misses, after.Misses)
	}
}
