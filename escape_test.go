package selfgo

import "testing"

// These tests pin the soundness rules around escaped closures: the
// paper's type chart lists "up-level assignments" as a source of the
// unknown type, and our compiler must never constant-fold through a
// variable a closure may assign.

// TestEscapedBlockInvalidatesConstant: a closure captured by a real
// send mutates x between the compiler's constant view and its use.
func TestEscapedBlockInvalidatesConstant(t *testing.T) {
	src := `
	"runTwice: is deliberately recursive so it compiles as a real call
	 and its block argument becomes a true closure."
	runTwice: blk Depth: d = (
		(d = 0) ifTrue: [ ^ nil ].
		blk value.
		runTwice: blk Depth: d - 1 ).
	go = ( | x <- 0 |
		runTwice: [ x: x + 5 ] Depth: 2.
		(x = 10) ifTrue: [ 1 ] False: [ 0 ] ).`
	for _, cfg := range Configs() {
		sys := newSys(t, cfg, src)
		if got := callInt(t, sys, "go"); got != 1 {
			t.Errorf("[%s] got %d, want 1 (x must be 10 after the closure ran twice)", cfg.Name, got)
		}
	}
}

// TestEscapedBlockSeesLaterWrites: the closure reads the variable's
// current value, not a snapshot.
func TestEscapedBlockSeesLaterWrites(t *testing.T) {
	src := `
	call: blk = ( (blk isNil) ifTrue: [ ^ 0 ]. blk value ).
	go = ( | x <- 1. b |
		b: [ x * 100 ].
		x: 7.
		call: b ).`
	for _, cfg := range Configs() {
		sys := newSys(t, cfg, src)
		if got := callInt(t, sys, "go"); got != 700 {
			t.Errorf("[%s] got %d, want 700", cfg.Name, got)
		}
	}
}

// TestConditionalEscape: the closure escapes on one path only; the
// other path's knowledge must still be discarded conservatively after
// the merge.
func TestConditionalEscape(t *testing.T) {
	src := `
	invoke: blk = ( (blk isNil) ifTrue: [ ^ 0 ]. blk value ).
	go: c = ( | x <- 3. b |
		b: [ x: x + 1 ].
		(c = 0) ifTrue: [ invoke: b ].
		x ).`
	for _, cfg := range Configs() {
		sys := newSys(t, cfg, src)
		if got := callInt(t, sys, "go:", IntValue(0)); got != 4 {
			t.Errorf("[%s] go: 0 = %d, want 4", cfg.Name, got)
		}
		if got := callInt(t, sys, "go:", IntValue(1)); got != 3 {
			t.Errorf("[%s] go: 1 = %d, want 3", cfg.Name, got)
		}
	}
}

// TestBlockInVectorInvoked: closures stored into data structures stay
// live and mutate their captures when pulled back out.
func TestBlockInVectorInvoked(t *testing.T) {
	src := `
	go = ( | v. total <- 0 |
		v: vector copySize: 3.
		0 upTo: 3 Do: [ :i | v at: i Put: [ total: total + i ] ].
		v do: [ :blk | blk value ].
		total ).`
	for _, cfg := range Configs() {
		sys := newSys(t, cfg, src)
		if got := callInt(t, sys, "go"); got != 3 { // 0+1+2
			t.Errorf("[%s] got %d, want 3", cfg.Name, got)
		}
	}
}

// TestNestedClosureCapture: a block created inside another escaped
// block reaches through two closure levels.
func TestNestedClosureCapture(t *testing.T) {
	src := `
	invoke: blk = ( (blk isNil) ifTrue: [ ^ 0 ]. blk value ).
	go = ( | x <- 5. outer |
		outer: [ | inner | inner: [ x * 2 ]. invoke: inner ].
		invoke: outer ).`
	for _, cfg := range Configs() {
		sys := newSys(t, cfg, src)
		if got := callInt(t, sys, "go"); got != 10 {
			t.Errorf("[%s] got %d, want 10", cfg.Name, got)
		}
	}
}

// TestLoopWithEscapingBody: the loop body escapes as a closure to a
// non-inlined runner — the volatile rule must kill folding of the
// accumulator across iterations.
func TestLoopWithEscapingBody(t *testing.T) {
	src := `
	times: n Run: blk = ( (n = 0) ifTrue: [ ^ nil ]. blk value. times: n - 1 Run: blk ).
	go = ( | acc <- 1 |
		times: 4 Run: [ acc: acc * 2 ].
		acc ).`
	for _, cfg := range Configs() {
		sys := newSys(t, cfg, src)
		if got := callInt(t, sys, "go"); got != 16 {
			t.Errorf("[%s] got %d, want 16", cfg.Name, got)
		}
	}
}
