package selfgo_test

import (
	"errors"
	"testing"

	"selfgo"
	"selfgo/internal/bench"
)

// unfused returns cfg with superinstruction fusion disabled — the
// differential oracle configuration. Everything else (name included)
// stays identical so compiled code and cost accounting can be compared
// field by field.
func unfused(cfg selfgo.Config) selfgo.Config {
	cfg.NoSuperinstructions = true
	return cfg
}

// TestFusedVsUnfusedBenchmarks: superinstruction fusion is a host-speed
// optimization only. Every benchmark must produce the identical check
// value, identical full RunStats (cycles, instrs, sends, type tests,
// overflow/bounds checks, allocs, depth), and identical modelled code
// size with fusion on and off.
func TestFusedVsUnfusedBenchmarks(t *testing.T) {
	configs := map[string][]bench.Benchmark{
		"new SELF":    bench.All(),
		"optimized C": bench.All(),
		"ST-80":       bench.ByGroup("small"),
	}
	byName := map[string]selfgo.Config{
		"new SELF":    selfgo.NewSELF,
		"optimized C": selfgo.OptimizedC,
		"ST-80":       selfgo.ST80,
	}
	for name, benches := range configs {
		cfg := byName[name]
		t.Run(name, func(t *testing.T) {
			for _, b := range benches {
				fused, err := bench.Run(b, cfg)
				if err != nil {
					t.Fatalf("%s fused: %v", b.Name, err)
				}
				plain, err := bench.Run(b, unfused(cfg))
				if err != nil {
					t.Fatalf("%s unfused: %v", b.Name, err)
				}
				if fused.Value != plain.Value {
					t.Errorf("%s: value fused=%d unfused=%d", b.Name, fused.Value, plain.Value)
				}
				if fused.Run != plain.Run {
					t.Errorf("%s: RunStats diverged:\nfused:   %+v\nunfused: %+v", b.Name, fused.Run, plain.Run)
				}
				if fused.CodeBytes != plain.CodeBytes || fused.Methods != plain.Methods {
					t.Errorf("%s: compile record diverged: fused=(%d bytes, %d methods) unfused=(%d bytes, %d methods)",
						b.Name, fused.CodeBytes, fused.Methods, plain.CodeBytes, plain.Methods)
				}
			}
		})
	}
}

// TestFusedVsUnfusedFaultBacktraces: faulting programs must fail the
// same way with fusion on and off — same error kind, same message, and
// the same sequence of Self-level backtrace frame names. (Frame PCs are
// not compared: fusion legitimately renumbers pcs within a method.)
func TestFusedVsUnfusedFaultBacktraces(t *testing.T) {
	cases := []struct {
		name  string
		cfg   selfgo.Config
		src   string
		entry string
		args  []selfgo.Value
	}{
		{
			// DNU under real activation frames (ST-80 keeps user sends
			// out of line) — the program from TestErrorKindDNU.
			name: "dnu depth",
			cfg:  selfgo.ST80,
			src: `
outer = ( middle ).
middle = ( inner ).
inner = ( 3 zorkify ).
`,
			entry: "outer",
		},
		{
			// Unchecked division by zero (StaticIdeal removes the
			// checks); the Div sits in fusable arithmetic context.
			name:  "unchecked div zero",
			cfg:   selfgo.OptimizedC,
			src:   `crash: n = ( (7 * 3) / n ).`,
			entry: "crash:",
			args:  []selfgo.Value{selfgo.IntValue(0)},
		},
		{
			// Unchecked element access out of bounds.
			name: "unchecked elem oob",
			cfg:  selfgo.OptimizedC,
			src: `
vecAt: i = ( | v | v: (vector copySize: 3 FillWith: 0). v at: i ).
`,
			entry: "vecAt:",
			args:  []selfgo.Value{selfgo.IntValue(99)},
		},
		{
			// Checked overflow cascading into the failure path.
			name:  "overflow",
			cfg:   selfgo.NewSELF,
			src:   `blow: n = ( (n * n) * n ).`,
			entry: "blow:",
			args:  []selfgo.Value{selfgo.IntValue(1 << 40)},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ferr := runFault(t, c.cfg, c.src, c.entry, c.args)
			perr := runFault(t, unfused(c.cfg), c.src, c.entry, c.args)
			if (ferr == nil) != (perr == nil) {
				t.Fatalf("error presence mismatch: fused=%v unfused=%v", ferr, perr)
			}
			if ferr == nil {
				return // both succeeded; covered by the benchmark test
			}
			fk, _ := selfgo.ErrorKind(ferr)
			pk, _ := selfgo.ErrorKind(perr)
			if fk != pk {
				t.Errorf("kind fused=%v unfused=%v", fk, pk)
			}
			var fre, pre *selfgo.RuntimeError
			if !errors.As(ferr, &fre) || !errors.As(perr, &pre) {
				t.Fatalf("not RuntimeErrors: fused=%T unfused=%T", ferr, perr)
			}
			if fre.Msg != pre.Msg {
				t.Errorf("message fused=%q unfused=%q", fre.Msg, pre.Msg)
			}
			if len(fre.Trace) != len(pre.Trace) {
				t.Fatalf("trace depth fused=%d unfused=%d\nfused:\n%s\nunfused:\n%s",
					len(fre.Trace), len(pre.Trace), fre.Backtrace(), pre.Backtrace())
			}
			for i := range fre.Trace {
				if fre.Trace[i].Name != pre.Trace[i].Name {
					t.Errorf("trace frame %d: fused=%q unfused=%q", i, fre.Trace[i].Name, pre.Trace[i].Name)
				}
			}
		})
	}
}

func runFault(t *testing.T, cfg selfgo.Config, src, entry string, args []selfgo.Value) error {
	t.Helper()
	sys, err := selfgo.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSource(src); err != nil {
		t.Fatal(err)
	}
	_, err = sys.Call(entry, args...)
	return err
}
