package selfgo

import (
	"context"
	"strings"
	"testing"
)

// newSys builds a system, loads src, and fails the test on error.
func newSys(t *testing.T, cfg Config, src string) *System {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSource(src); err != nil {
		t.Fatal(err)
	}
	return sys
}

func callInt(t *testing.T, sys *System, sel string, args ...Value) int64 {
	t.Helper()
	res, err := sys.Call(sel, args...)
	if err != nil {
		t.Fatalf("Call(%s): %v", sel, err)
	}
	return res.Value.I()
}

// TestLanguageFeatures exercises the language surface under every
// compiler configuration: all six systems must agree.
func TestLanguageFeatures(t *testing.T) {
	cases := []struct {
		name, src, sel string
		args           []Value
		want           int64
	}{
		{"arith", `go = ( ((2 + 3) * 4 - 6) / 2 ).`, "go", nil, 7},
		{"mod-div", `go = ( ((17 % 5) * 100) + (17 / 5) ).`, "go", nil, 203},
		{"bitops", `go = ( ((12 bitAnd: 10) * 10000) + ((12 bitOr: 10) * 100) + (12 bitXor: 10) ).`, "go", nil, 81406},
		{"negatives", `go = ( (-5 + 3) abs + -1 abs ).`, "go", nil, 3},
		{"minmax", `go = ( ((3 min: 7) + (3 max: 7)) + (2 succ) + (2 pred) ).`, "go", nil, 14},
		{"evenodd", `go = ( (4 even) asInt * 10 + (4 odd) asInt ).`, "go", nil, 10},
		{"vector", `go = ( | v | v: vector copySize: 5. v atAllPut: 7. (v at: 2) + v size ).`, "go", nil, 12},
		{"vec2d", `go = ( | m | m: vector copySize: 3. 0 upTo: 3 Do: [ :i | m at: i Put: (vector copySize: 3 FillWith: i) ]. ((m at: 2) at: 1) ).`, "go", nil, 2},
		{"object", `pt = (| parent* = lobby. x <- 1. y <- 2. sum = ( x + y ). movexTo: nx = ( x: nx. self ) |).
		            go = ( | p | p: pt _Clone. p movexTo: 40. p sum ).`, "go", nil, 42},
		{"clone-isolation", `ctr = (| parent* = lobby. n <- 0. bump = ( n: n + 1. n ) |).
		            go = ( | a. b | a: ctr _Clone. b: ctr _Clone. a bump. a bump. b bump. (a n * 10) + b n ).`, "go", nil, 21},
		{"inherited-global", `gCount <- 5.
		            o = (| parent* = lobby. take = ( gCount: gCount + 1. gCount ) |).
		            go = ( | x | x: o _Clone take. x + gCount ).`, "go", nil, 12},
		{"recursion", `fib: n = ( (n < 2) ifTrue: [ n ] False: [ (fib: n - 1) + (fib: n - 2) ] ).`, "fib:", []Value{IntValue(15)}, 610},
		{"mutual-recursion", `isEven: n = ( (n = 0) ifTrue: [ 1 ] False: [ isOdd: n - 1 ] ).
		            isOdd: n = ( (n = 0) ifTrue: [ 0 ] False: [ isEven: n - 1 ] ).
		            go = ( (isEven: 10) * 10 + (isOdd: 7) ).`, "go", nil, 11},
		{"ifs", `go = ( | x <- 0 | (3 < 4) ifTrue: [ x: x + 1 ]. (4 < 3) ifFalse: [ x: x + 10 ]. ((x = 11) and: [ true ]) ifTrue: [ x: x + 100 ] False: [ x: 0 ]. x ).`, "go", nil, 111},
		{"and-or", `go = ( | c <- 0 | (true and: [ false or: [ true ] ]) ifTrue: [ c: 1 ]. (false and: [ true ]) ifTrue: [ c: c + 10 ]. c ).`, "go", nil, 1},
		{"not", `go = ( ((3 < 4) not) asInt * 10 + ((4 < 3) not) asInt ).`, "go", nil, 1},
		{"while", `go = ( | i <- 0. s <- 0 | [ i < 10 ] whileTrue: [ s: s + i. i: i + 1 ]. s ).`, "go", nil, 45},
		{"whileFalse", `go = ( | i <- 0 | [ i >= 5 ] whileFalse: [ i: i + 1 ]. i ).`, "go", nil, 5},
		{"upTo", `go = ( | s <- 0 | 1 upTo: 5 Do: [ :i | s: s + i ]. s ).`, "go", nil, 10},
		{"to", `go = ( | s <- 0 | 1 to: 5 Do: [ :i | s: s + i ]. s ).`, "go", nil, 15},
		{"downTo", `go = ( | s <- 0 | 5 downTo: 1 Do: [ :i | s: s + i ]. s ).`, "go", nil, 15},
		{"timesRepeat", `go = ( | s <- 0 | 7 timesRepeat: [ s: s + 2 ]. s ).`, "go", nil, 14},
		{"nested-loops", `go = ( | s <- 0 | 0 upTo: 5 Do: [ :i | 0 upTo: 5 Do: [ :j | s: s + (i * j) ] ]. s ).`, "go", nil, 100},
		{"nlr-from-loop", `find: n = ( 0 upTo: 100 Do: [ :i | (i = n) ifTrue: [ ^ i * 2 ] ]. -1 ).`, "find:", []Value{IntValue(21)}, 42},
		{"nlr-miss", `find: n = ( 0 upTo: 10 Do: [ :i | (i = n) ifTrue: [ ^ i ] ]. -1 ).`, "find:", []Value{IntValue(50)}, -1},
		{"nlr-through-inline", `rec: n = ( (n = 0) ifTrue: [ ^ 100 ]. 0 upTo: 3 Do: [ :k | (k = 1) ifTrue: [ ^ (rec: n - 1) + 1 ] ]. 0 ).
		            go = ( rec: 3 ).`, "go", nil, 103},
		{"identity", `go = ( | v | v: nil. ((v isNil) asInt * 10) + (3 == 3) asInt ).`, "go", nil, 11},
		{"block-value", `apply: blk To: x = ( blk value: x ).
		            go = ( apply: [ :v | v * 3 ] To: 14 ).`, "go", nil, 42},
		{"block-capture", `mkAdder: n = ( [ :x | x + n ] ).
		            go = ( (mkAdder: 10) value: 32 ).`, "go", nil, 42},
		{"block-mutate-upvar", `go = ( | c <- 0. blk | blk: [ c: c + 1 ]. blk value. blk value. blk value. c ).`, "go", nil, 3},
		{"objlit-in-method", `go = ( | o | o: (| parent* = lobby. v = ( 9 ) |). o v ).`, "go", nil, 9},
		{"do", `go = ( | v. s <- 0 | v: vector copySize: 4 FillWith: 5. v do: [ :e | s: s + e ]. s ).`, "go", nil, 20},
		{"withIndexDo", `go = ( | v. s <- 0 | v: vector copySize: 4 FillWith: 2. v withIndexDo: [ :e :i | s: s + (e * i) ]. s ).`, "go", nil, 12},
		{"fillFrom", `go = ( | v. s <- 0 | v: vector copySize: 5. v fillFrom: [ :i | i * i ]. v do: [ :e | s: s + e ]. s ).`, "go", nil, 30},
		{"vector-copy", `go = ( | a. b | a: vector copySize: 3 FillWith: 1. b: a copy. b at: 0 Put: 9. (a at: 0) * 10 + (b at: 0) ).`, "go", nil, 19},
		{"string-eq", `go = ( ('abc' = 'abc') asInt * 10 + ('abc' = 'abd') asInt ).`, "go", nil, 10},
		{"yourself", `go = ( 5 yourself + 1 ).`, "go", nil, 6},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, cfg := range Configs() {
				sys := newSys(t, cfg, c.src)
				if got := callInt(t, sys, c.sel, c.args...); got != c.want {
					t.Errorf("[%s] got %d, want %d", cfg.Name, got, c.want)
				}
			}
		})
	}
}

// TestPrimitiveFailureHandlers checks explicit IfFail: blocks and the
// default failure behavior.
func TestPrimitiveFailureHandlers(t *testing.T) {
	sys := newSys(t, NewSELF, `
		safeDiv: a By: b = ( a _IntDiv: b IfFail: [ -999 ] ).
		overflowing = ( | big <- 536870911 | big _IntAdd: big IfFail: [ -1 ] ).
	`)
	if got := callInt(t, sys, "safeDiv:By:", IntValue(10), IntValue(2)); got != 5 {
		t.Errorf("safeDiv 10/2 = %d", got)
	}
	if got := callInt(t, sys, "safeDiv:By:", IntValue(10), IntValue(0)); got != -999 {
		t.Errorf("safeDiv 10/0 = %d, want -999 (failure block)", got)
	}
	// MaxSmallInt + MaxSmallInt overflows into the failure block.
	if got := callInt(t, sys, "overflowing"); got != -1 {
		t.Errorf("overflow handler = %d, want -1", got)
	}
}

// TestRuntimeErrors checks that unhandled failures surface as errors.
func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, sel string
		wantSub        string
	}{
		{"dnu", `go = ( 3 noSuchMessage ).`, "go", "noSuchMessage"},
		{"div-zero", `go = ( 3 / 0 ).`, "go", "/"},
		{"bounds", `go = ( | v | v: vector copySize: 2. v at: 5 ).`, "go", "_At:"},
		{"error", `go = ( error: 'boom' ).`, "go", "boom"},
		{"overflow", `go = ( | x <- 536870911 | x + x ).`, "go", "+"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, cfg := range []Config{NewSELF, ST80, OptimizedC} {
				if cfg.StaticIdeal && c.name != "dnu" && c.name != "error" {
					continue // the C stand-in drops robustness checks by design
				}
				sys := newSys(t, cfg, c.src)
				_, err := sys.Call(c.sel)
				if err == nil {
					t.Fatalf("[%s] expected error", cfg.Name)
				}
				if !strings.Contains(err.Error(), c.wantSub) {
					t.Errorf("[%s] error %q does not mention %q", cfg.Name, err, c.wantSub)
				}
			}
		})
	}
}

// TestAssignToParameterRejected enforces SELF's immutable parameters
// (the compiler relies on this for argument aliasing).
func TestAssignToParameterRejected(t *testing.T) {
	sys := newSys(t, NewSELF, `bad: x = ( x: 3. x ).`)
	if _, err := sys.Call("bad:", IntValue(1)); err == nil || !strings.Contains(err.Error(), "parameter") {
		t.Errorf("expected parameter-assignment error, got %v", err)
	}
}

// TestEval runs scratch code.
func TestEval(t *testing.T) {
	sys, err := NewSystem(NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Eval(`| s <- 0 | 1 to: 4 Do: [ :i | s: s + i ]. s * 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.I() != 20 {
		t.Errorf("Eval = %v, want 20", res.Value)
	}
}

// TestStatsAccounting sanity-checks the run statistics.
func TestStatsAccounting(t *testing.T) {
	sys := newSys(t, NewSELF, `go = ( | s <- 0 | 1 to: 100 Do: [ :i | s: s + i ]. s ).`)
	res, err := sys.Call("go")
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Cycles <= 0 || res.Run.Instrs <= 0 {
		t.Errorf("stats empty: %+v", res.Run)
	}
	// Range analysis removes the loop counter's overflow check but not
	// the accumulator's: exactly one checked add per iteration.
	if res.Run.OvflChecks != 100 {
		t.Errorf("overflow checks = %d, want 100", res.Run.OvflChecks)
	}
	if res.Compile.Methods == 0 || res.Compile.CodeBytes == 0 {
		t.Errorf("compile record empty: %+v", res.Compile)
	}
}

// TestCompiledCodeReuse: the second call must not recompile.
func TestCompiledCodeReuse(t *testing.T) {
	sys := newSys(t, NewSELF, `go = ( 1 + 2 ).`)
	r1, err := sys.Call("go")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Call("go")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Compile.Methods != r1.Compile.Methods {
		t.Errorf("second call recompiled: %d -> %d methods", r1.Compile.Methods, r2.Compile.Methods)
	}
}

// TestCustomizationCompilesPerReceiverMap: with customization the same
// method compiles once per receiver map; without it, once in total.
func TestCustomizationCompilesPerReceiverMap(t *testing.T) {
	src := `
		shared = (| parent* = lobby.
		    countDown: n = ( (n = 0) ifTrue: [ self tag ] False: [ countDown: n - 1 ] ).
		    describe = ( countDown: 3 ) |).
		oa = (| parent* = shared. tag = ( 10 ) |).
		ob = (| parent* = shared. tag = ( 20 ) |).
		go = ( (oa describe) + (ob describe) ).`
	sys := newSys(t, NewSELF, src)
	if got := callInt(t, sys, "go"); got != 30 {
		t.Fatalf("go = %d", got)
	}
	// The recursive countDown: cannot be fully inlined, so it compiles
	// as a customized method: one copy per receiver map.
	n := 0
	for _, e := range sys.CompileLog() {
		if strings.HasSuffix(e.Name, ">>countDown:") {
			n++
		}
	}
	if n != 2 {
		t.Errorf("customization compiled %d copies of countDown:, want 2", n)
	}
}

// TestGraphAndCodeAccessors exercise the tool-facing API.
func TestGraphAndCodeAccessors(t *testing.T) {
	sys := newSys(t, NewSELF, `go = ( | s <- 0 | 1 to: 3 Do: [ :i | s: s + i ]. s ).`)
	g, st, err := sys.GraphFor("go")
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes == 0 || !strings.Contains(g.Dump(), "loopHead") {
		t.Errorf("graph dump missing loop: %s", g.Dump())
	}
	code, err := sys.CodeFor("go")
	if err != nil {
		t.Fatal(err)
	}
	if len(code.Instrs) == 0 || code.Bytes == 0 {
		t.Error("empty code")
	}
	if !strings.Contains(code.Disasm(), "ret") {
		t.Error("disassembly missing return")
	}
}

// TestEvalProgramInterning: an interned eval program compiles once
// across repeated runs and across forked workers, where plain Eval
// builds a fresh cache entry per call; DropEvalProgram evicts the
// interned entries again.
func TestEvalProgramInterning(t *testing.T) {
	root, err := NewSharedSystem(NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	w, err := root.Fork()
	if err != nil {
		t.Fatal(err)
	}
	const src = `| s <- 0 | 1 upTo: 50 Do: [ :i | s: s + i ]. s`
	p, err := root.ParseEval(src)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := root.CacheStats()
	for i := 0; i < 3; i++ {
		for _, sys := range []*System{root, w} {
			res, err := sys.EvalProgramCtx(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Value.I() != 1225 {
				t.Fatalf("value = %d, want 1225", res.Value.I())
			}
		}
	}
	st, _ := root.CacheStats()
	grew := st.Entries - base.Entries
	if grew < 1 {
		t.Fatalf("interned program added no cache entries (entries %d -> %d)", base.Entries, st.Entries)
	}
	// Plain Eval of the same source keeps adding entries per call…
	if _, err := root.Eval(src); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Eval(src); err != nil {
		t.Fatal(err)
	}
	st2, _ := root.CacheStats()
	if st2.Entries <= st.Entries {
		t.Fatalf("plain Eval did not add entries (entries %d -> %d)", st.Entries, st2.Entries)
	}
	// …while the interned program's entries can be evicted precisely.
	evicted0 := st2.Evicted
	root.DropEvalProgram(p)
	st3, _ := root.CacheStats()
	if st3.Evicted-evicted0 < grew {
		t.Fatalf("DropEvalProgram evicted %d entries, want >= %d", st3.Evicted-evicted0, grew)
	}
	// And the program still runs afterwards (recompiles).
	res, err := w.EvalProgramCtx(context.Background(), p)
	if err != nil || res.Value.I() != 1225 {
		t.Fatalf("rerun after drop: %v, %v", res, err)
	}
}
